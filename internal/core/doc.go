// Package core implements the actor-oriented database runtime — this
// repository's reproduction of the Orleans virtual-actor substrate the
// paper builds its IoT data platform on, extended with the data-management
// hooks (persistent state, provisioned storage, reminders) that make it an
// AODB rather than a plain actor framework.
//
// # Virtual actors
//
// An actor is addressed by an ID (kind + key) and is logically always
// present: callers never create or destroy actors, they just Call them.
// The runtime activates an in-memory instance on first use, routes every
// message through a per-activation mailbox so application code is always
// single-threaded with respect to one actor, and deactivates instances
// that have been idle, persisting their state if configured. This is the
// activation model the paper's Section 5 describes for Orleans grains.
//
// # Topology
//
// A Runtime hosts one or more named silos (logical servers). The grain
// directory tracks which silo holds each activation; a placement strategy
// (random, prefer-local, or consistent-hash — see the placement package)
// chooses a silo on first activation. Messages between actors on different
// silos travel through a transport, which may charge simulated network
// latency (netsim) or cross real TCP connections.
//
// # Usage sketch
//
//	rt := core.New(core.Config{Store: kv})
//	rt.RegisterKind("Counter", func() core.Actor { return &counter{} },
//	    core.WithPersistence(core.PersistOnDeactivate))
//	rt.AddSilo("silo-1", nil)
//	resp, err := rt.Call(ctx, core.ID{Kind: "Counter", Key: "c1"}, Add{N: 2})
//
// Actor implementations receive a *Context giving them their identity,
// asynchronous Call/Tell to other actors, explicit state writes, timers,
// and persistent reminders.
package core
