package core

import (
	"context"
	"testing"

	"aodb/internal/journal"
	"aodb/internal/kvstore"
	"aodb/internal/telemetry"
)

// TestMigrateJournalContinuity: one migration's flight-recorder events —
// prepare, drain, activate — must share a single correlation id and land
// in causal (HLC) order, so a merged timeline reads the hand-off as one
// operation rather than three coincidences.
func TestMigrateJournalContinuity(t *testing.T) {
	kv, err := kvstore.Open(kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	jr := journal.New(journal.Config{Silo: "proc-1"})
	jr.SetEnabled(true)
	rt := newTestRuntime(t, Config{Store: kv, Journal: jr})
	registerCounter(t, rt, WithPersistence(PersistOnDeactivate))
	rt.AddSilo("silo-1", nil)
	rt.AddSilo("silo-2", nil)
	ctx := context.Background()

	id := ID{"Counter", "journaled"}
	if _, err := rt.Call(ctx, id, addMsg{N: 1}); err != nil {
		t.Fatal(err)
	}
	reg, _ := rt.Directory().Lookup(id.String())
	dst := "silo-1"
	if reg.Silo == dst {
		dst = "silo-2"
	}
	if err := rt.Migrate(ctx, id, dst); err != nil {
		t.Fatalf("Migrate: %v", err)
	}

	var prepare, drain, activate *journal.WireEvent
	for _, e := range jr.WireSnapshot() {
		if e.Actor != id.String() {
			continue
		}
		e := e
		switch e.Kind {
		case "migrate-prepare":
			prepare = &e
		case "migrate-drain":
			drain = &e
		case "migrate-activate":
			activate = &e
		}
	}
	if prepare == nil || drain == nil || activate == nil {
		t.Fatalf("missing migration phases: prepare=%v drain=%v activate=%v", prepare, drain, activate)
	}
	if prepare.Corr == "" {
		t.Fatal("migration events must carry a correlation id")
	}
	if drain.Corr != prepare.Corr || activate.Corr != prepare.Corr {
		t.Fatalf("phases must share one correlation id: prepare=%s drain=%s activate=%s",
			prepare.Corr, drain.Corr, activate.Corr)
	}
	// Cause sorts before effect: the HLC strictly advances through the
	// phases (Record mints a fresh stamp, so equality would mean a phase
	// was recorded out of order).
	if !(prepare.HLC < drain.HLC && drain.HLC < activate.HLC) {
		t.Fatalf("phases out of causal order: prepare=%d drain=%d activate=%d",
			prepare.HLC, drain.HLC, activate.HLC)
	}
}

// TestMigrateTraceContextSurvives: a traced call before and after a
// migration must both produce spans — the tracer's context propagation
// does not break when the actor changes homes mid-stream.
func TestMigrateTraceContextSurvives(t *testing.T) {
	kv, err := kvstore.Open(kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	tracer := telemetry.New(telemetry.Config{})
	rt := newTestRuntime(t, Config{Store: kv, Tracer: tracer})
	registerCounter(t, rt, WithPersistence(PersistOnDeactivate))
	rt.AddSilo("silo-1", nil)
	rt.AddSilo("silo-2", nil)
	ctx := context.Background()

	id := ID{"Counter", "traced-mover"}
	if _, err := rt.Call(ctx, id, addMsg{N: 1}); err != nil {
		t.Fatal(err)
	}
	reg, _ := rt.Directory().Lookup(id.String())
	dst := "silo-1"
	if reg.Silo == dst {
		dst = "silo-2"
	}
	before := len(tracer.Spans())
	if err := rt.Migrate(ctx, id, dst); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if _, err := rt.Call(ctx, id, addMsg{N: 1}); err != nil {
		t.Fatal(err)
	}
	spans := tracer.Spans()
	if len(spans) <= before {
		t.Fatalf("no spans recorded after migration: %d before, %d after", before, len(spans))
	}
	// The post-migration turn must attribute to the new home, under a
	// root span — the trace tree stays intact across the move.
	found := false
	for _, sp := range spans {
		if sp.Kind == telemetry.KindTurn && sp.Actor == id.String() && sp.Silo == dst && sp.TraceID != 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no turn span attributed to %s on %s after migration", id, dst)
	}
}
