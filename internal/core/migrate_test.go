package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"aodb/internal/kvstore"
)

// TestMigrateMovesStatefulActor: the basic hand-off — drain at the
// source with a state flush, re-activate at the target, state intact.
func TestMigrateMovesStatefulActor(t *testing.T) {
	kv, err := kvstore.Open(kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	rt := newTestRuntime(t, Config{Store: kv})
	registerCounter(t, rt, WithPersistence(PersistOnDeactivate))
	rt.AddSilo("silo-1", nil)
	rt.AddSilo("silo-2", nil)
	ctx := context.Background()

	id := ID{"Counter", "mover"}
	if _, err := rt.Call(ctx, id, addMsg{N: 41}); err != nil {
		t.Fatal(err)
	}
	reg, ok := rt.Directory().Lookup(id.String())
	if !ok {
		t.Fatal("no registration after call")
	}
	src := reg.Silo
	dst := "silo-1"
	if src == dst {
		dst = "silo-2"
	}

	if err := rt.Migrate(ctx, id, dst); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	reg, ok = rt.Directory().Lookup(id.String())
	if !ok || reg.Silo != dst {
		t.Fatalf("registration after migrate = %+v, want %s", reg, dst)
	}
	v, err := rt.Call(ctx, id, addMsg{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v.(int) != 42 {
		t.Fatalf("state after migrate = %v, want 42", v)
	}
	srcSilo, _ := rt.Silo(src)
	if n := srcSilo.Activations(); n != 0 {
		t.Fatalf("source still hosts %d activations", n)
	}
	counts := rt.Metrics().Counters()
	if counts["core.migrations.out"] != 1 || counts["core.migrations.in"] != 1 {
		t.Fatalf("migration counters = out:%d in:%d, want 1/1",
			counts["core.migrations.out"], counts["core.migrations.in"])
	}

	// Migrating an idle (never-activated) actor just activates it there.
	ghost := ID{"Counter", "ghost"}
	if err := rt.Migrate(ctx, ghost, dst); err != nil {
		t.Fatal(err)
	}
	if reg, ok := rt.Directory().Lookup(ghost.String()); !ok || reg.Silo != dst {
		t.Fatalf("ghost registration = %+v, want %s", reg, dst)
	}
	// Migrating to the current home is a no-op.
	if err := rt.Migrate(ctx, id, dst); err != nil {
		t.Fatal(err)
	}
}

// TestCallsDuringMigrationNotLostNotDoubled hammers an actor with
// concurrent increments while it migrates. Every acked increment must
// land exactly once: queued turns run at the source before its final
// flush, late arrivals are redirected to the target, and the target
// loads the flushed state — so the final count equals the acks.
func TestCallsDuringMigrationNotLostNotDoubled(t *testing.T) {
	kv, err := kvstore.Open(kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	rt := newTestRuntime(t, Config{Store: kv})
	registerCounter(t, rt, WithPersistence(PersistOnDeactivate))
	rt.AddSilo("silo-1", nil)
	rt.AddSilo("silo-2", nil)
	ctx := context.Background()

	id := ID{"Counter", "busy"}
	if _, err := rt.Call(ctx, id, getMsg{}); err != nil {
		t.Fatal(err)
	}
	reg, _ := rt.Directory().Lookup(id.String())
	dst := "silo-1"
	if reg.Silo == dst {
		dst = "silo-2"
	}

	const callers = 8
	const perCaller = 25
	var wg sync.WaitGroup
	errs := make(chan error, callers*perCaller)
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < perCaller; j++ {
				if _, err := rt.Call(ctx, id, addMsg{N: 1}); err != nil {
					errs <- err
				}
			}
		}()
	}
	close(start)
	// Migrate mid-hammer (twice, there and back, for good measure).
	if err := rt.Migrate(ctx, id, dst); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if err := rt.Migrate(ctx, id, reg.Silo); err != nil {
		t.Fatalf("Migrate back: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent call failed during migration: %v", err)
	}
	v, err := rt.Call(ctx, id, getMsg{})
	if err != nil {
		t.Fatal(err)
	}
	if v.(int) != callers*perCaller {
		t.Fatalf("count after migration = %v, want %d (lost or doubled turns)", v, callers*perCaller)
	}
}

// fenceActor blocks mid-turn on command, then mutates and explicitly
// persists — the shape that exposes zombie writers under forced
// hand-off.
type fenceActor struct {
	state   counterState
	entered chan struct{}
	release chan struct{}
}

type blockThenAddMsg struct{ N int }

func (f *fenceActor) State() any { return &f.state }

func (f *fenceActor) Receive(ctx *Context, msg any) (any, error) {
	switch m := msg.(type) {
	case addMsg:
		f.state.N += m.N
		return f.state.N, ctx.WriteState()
	case getMsg:
		return f.state.N, nil
	case blockThenAddMsg:
		f.entered <- struct{}{}
		<-f.release
		f.state.N += m.N
		return f.state.N, ctx.WriteState()
	}
	return nil, fmt.Errorf("unknown message %T", msg)
}

// TestForcedMigrationFencesZombieWrite: an activation stuck in a turn
// past the drain budget is fenced; when its turn finally completes, its
// state write fails stale instead of clobbering the successor that
// already activated at the target.
func TestForcedMigrationFencesZombieWrite(t *testing.T) {
	kv, err := kvstore.Open(kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	// Retries disabled so the zombie's caller sees the fence directly
	// (with retries on, the call would transparently re-run at the
	// target — correct, but it would hide what this test asserts).
	rt := newTestRuntime(t, Config{Store: kv, Retry: RetryPolicy{Disabled: true}})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	if err := rt.RegisterKind("Fence", func() Actor {
		return &fenceActor{entered: entered, release: release}
	}, WithPersistence(PersistExplicit)); err != nil {
		t.Fatal(err)
	}
	rt.AddSilo("silo-1", nil)
	rt.AddSilo("silo-2", nil)
	ctx := context.Background()

	id := ID{"Fence", "stuck"}
	if _, err := rt.Call(ctx, id, addMsg{N: 5}); err != nil {
		t.Fatal(err)
	}
	reg, _ := rt.Directory().Lookup(id.String())
	src := reg.Silo
	dst := "silo-1"
	if src == dst {
		dst = "silo-2"
	}

	callErr := make(chan error, 1)
	go func() {
		_, err := rt.Call(ctx, id, blockThenAddMsg{N: 100})
		callErr <- err
	}()
	<-entered // the turn is now wedged mid-execution

	mctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel()
	if err := rt.Migrate(mctx, id, dst); err != nil {
		t.Fatalf("forced Migrate: %v", err)
	}
	if got := rt.Metrics().Counters()["core.migrations.forced"]; got != 1 {
		t.Fatalf("core.migrations.forced = %d, want 1", got)
	}
	// The successor is live at the target with the last flushed state.
	v, err := rt.Call(ctx, id, getMsg{})
	if err != nil {
		t.Fatal(err)
	}
	if v.(int) != 5 {
		t.Fatalf("successor state = %v, want 5", v)
	}

	// Unwedge the zombie: its mutation + write must be fenced off.
	close(release)
	if err := <-callErr; !errors.Is(err, ErrStaleActivation) {
		t.Fatalf("zombie caller error = %v, want ErrStaleActivation", err)
	}
	if got := rt.Metrics().Counters()["core.stale_writes_fenced"]; got == 0 {
		t.Fatal("no stale write was fenced")
	}
	v, err = rt.Call(ctx, id, getMsg{})
	if err != nil {
		t.Fatal(err)
	}
	if v.(int) != 5 {
		t.Fatalf("state after zombie write attempt = %v, want 5 (zombie clobbered it)", v)
	}
}

// TestMovedMarkerRedirects: after a hand-off, calls landing on the old
// silo are answered with a redirect to the new home rather than
// re-activating locally — even when the directory has no entry (the
// TCP-mode situation, simulated here by evicting it).
func TestMovedMarkerRedirects(t *testing.T) {
	rt := newTestRuntime(t, Config{})
	registerCounter(t, rt)
	rt.AddSilo("silo-1", nil)
	rt.AddSilo("silo-2", nil)
	ctx := context.Background()

	id := ID{"Counter", "marked"}
	if _, err := rt.Call(ctx, id, addMsg{N: 7}); err != nil {
		t.Fatal(err)
	}
	reg, _ := rt.Directory().Lookup(id.String())
	src := reg.Silo
	dst := "silo-1"
	if src == dst {
		dst = "silo-2"
	}
	if err := rt.Migrate(ctx, id, dst); err != nil {
		t.Fatal(err)
	}
	// Simulate a process-local directory that never heard of the actor:
	// the moved marker alone must still bounce the call to the target.
	if reg, ok := rt.Directory().Lookup(id.String()); ok {
		rt.Directory().Unregister(reg)
	}
	srcSilo, _ := rt.Silo(src)
	_, err := srcSilo.resolve(ctx, id)
	if !IsWrongSilo(err) {
		t.Fatalf("resolve on old silo = %v, want wrong-silo redirect", err)
	}
	if got := redirectTarget(err); got != dst {
		t.Fatalf("redirect target = %q, want %q", got, dst)
	}
	// And the full call path follows the redirect: the actor keeps
	// running at dst, and src does not resurrect it.
	if _, err := rt.Call(ctx, id, getMsg{}); err != nil {
		t.Fatal(err)
	}
	if n := srcSilo.Activations(); n != 0 {
		t.Fatalf("old silo resurrected the actor (%d activations)", n)
	}
	dstSilo, _ := rt.Silo(dst)
	if n := dstSilo.Activations(); n != 1 {
		t.Fatalf("target hosts %d activations, want 1", n)
	}
}
