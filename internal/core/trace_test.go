package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"aodb/internal/capacity"
	"aodb/internal/kvstore"
	"aodb/internal/telemetry"
	"aodb/internal/transport"
)

// relayActor forwards a message to another actor, exercising nested-call
// trace propagation and accounting.
type relayActor struct{}

type relayMsg struct{ Target ID }

func (r *relayActor) Receive(ctx *Context, msg any) (any, error) {
	m := msg.(relayMsg)
	return ctx.Call(m.Target, addMsg{N: 1})
}

// spansByKind splits a trace's spans into the root and its turns.
func spansByKind(spans []telemetry.Span, traceID uint64) (root *telemetry.Span, turns []telemetry.Span) {
	for i := range spans {
		sp := spans[i]
		if sp.TraceID != traceID {
			continue
		}
		if sp.Kind == telemetry.KindRoot {
			root = &spans[i]
		} else {
			turns = append(turns, sp)
		}
	}
	return root, turns
}

// TestTraceEndToEndComponents drives one relayed call through a
// capacity-limited silo and checks the full span tree: root -> relay
// turn -> counter turn, with the simulated-CPU and nested-call
// components attributed.
func TestTraceEndToEndComponents(t *testing.T) {
	tracer := telemetry.New(telemetry.Config{})
	rt := newTestRuntime(t, Config{
		Tracer: tracer,
		Cost:   func(ID, any) time.Duration { return 2 * time.Millisecond },
	})
	registerCounter(t, rt)
	if err := rt.RegisterKind("Relay", func() Actor { return &relayActor{} }); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddSilo("s1", capacity.NewLimiter(capacity.M5Large, nil)); err != nil {
		t.Fatal(err)
	}

	target := ID{"Counter", "a"}
	if _, err := rt.Call(context.Background(), ID{"Relay", "r"}, relayMsg{Target: target}); err != nil {
		t.Fatal(err)
	}

	spans := tracer.Spans()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3 (root + 2 turns): %+v", len(spans), spans)
	}
	root, turns := spansByKind(spans, spans[0].TraceID)
	if root == nil || len(turns) != 2 {
		t.Fatalf("trace shape: root=%v turns=%d", root, len(turns))
	}
	if root.Actor != "call Relay/r" || root.Dur <= 0 || root.Err != "" {
		t.Fatalf("root = %+v", root)
	}
	var relay, counter telemetry.Span
	for _, sp := range turns {
		switch sp.Actor {
		case "Relay/r":
			relay = sp
		case "Counter/a":
			counter = sp
		}
	}
	if relay.Parent != root.SpanID {
		t.Fatalf("relay turn parent = %d, want root span %d", relay.Parent, root.SpanID)
	}
	if counter.Parent != relay.SpanID {
		t.Fatalf("counter turn parent = %d, want relay span %d", counter.Parent, relay.SpanID)
	}
	for _, sp := range []telemetry.Span{relay, counter} {
		if sp.Silo != "s1" || sp.Dur <= 0 {
			t.Fatalf("turn = %+v", sp)
		}
	}
	// The limiter's overshoot credit can zero an individual turn's burn,
	// but the trace as a whole must show simulated CPU service time.
	if relay.CPUBurn+counter.CPUBurn <= 0 {
		t.Fatalf("trace CPUBurn = %v + %v, want > 0 with a cost model", relay.CPUBurn, counter.CPUBurn)
	}
	// The relay arrived from an external client (remote hop); the nested
	// counter call stayed on the same silo.
	if !relay.Remote || counter.Remote {
		t.Fatalf("remote flags: relay=%v counter=%v", relay.Remote, counter.Remote)
	}
	if relay.Nested <= 0 || relay.Hops != 1 {
		t.Fatalf("relay nested accounting: nested=%v hops=%d", relay.Nested, relay.Hops)
	}
	// ExecSelf must strip the nested counter call out of the relay turn.
	if relay.ExecSelf() >= relay.Exec {
		t.Fatalf("relay ExecSelf %v not reduced from Exec %v", relay.ExecSelf(), relay.Exec)
	}

	stats := map[string]telemetry.KindStats{}
	for _, ks := range tracer.KindStats() {
		stats[ks.Kind] = ks
	}
	if stats["Relay"].Turns != 1 || stats["Counter"].Turns != 1 {
		t.Fatalf("kind stats = %+v", stats)
	}
}

// TestTraceAttributesStorageTime: a turn that writes actor state through
// the kvstore sees that time attributed to its span's StoreWrite.
func TestTraceAttributesStorageTime(t *testing.T) {
	kv, err := kvstore.Open(kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	tracer := telemetry.New(telemetry.Config{})
	rt := newTestRuntime(t, Config{Store: kv, Tracer: tracer})
	registerCounter(t, rt, WithPersistence(PersistExplicit))
	addSilo(t, rt, "s1")
	ctx := context.Background()
	id := ID{"Counter", "a"}
	if _, err := rt.Call(ctx, id, addMsg{N: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Call(ctx, id, saveMsg{}); err != nil {
		t.Fatal(err)
	}
	var saveTurn *telemetry.Span
	spans := tracer.Spans()
	for i := range spans {
		sp := &spans[i]
		if sp.Kind == telemetry.KindTurn && sp.StoreWrite > 0 {
			saveTurn = sp
		}
	}
	if saveTurn == nil {
		t.Fatalf("no turn span attributed StoreWrite time: %+v", spans)
	}
	if saveTurn.ExecSelf() >= saveTurn.Exec {
		t.Fatalf("store time not subtracted from ExecSelf: %+v", saveTurn)
	}
}

// TestRootSpanRecordsRetries: transient transport failures absorbed by
// the self-healing call path surface on the root span's retry count, and
// the trace still completes with a turn on the (eventually reached) silo.
func TestRootSpanRecordsRetries(t *testing.T) {
	inner := transport.NewLocal(nil, nil)
	ft := &failFirstTransport{Transport: inner}
	ft.remaining.Store(2)
	tracer := telemetry.New(telemetry.Config{})
	rt := newTestRuntime(t, Config{
		Transport: ft,
		Tracer:    tracer,
		Retry:     RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond},
	})
	registerCounter(t, rt)
	addSilo(t, rt, "s1")

	if _, err := rt.Call(context.Background(), ID{"Counter", "a"}, addMsg{3}); err != nil {
		t.Fatal(err)
	}
	spans := tracer.Spans()
	root, turns := spansByKind(spans, spans[0].TraceID)
	if root == nil || root.Retries != 2 || root.Err != "" {
		t.Fatalf("root = %+v, want 2 retries and success", root)
	}
	if len(turns) != 1 || turns[0].Silo != "s1" {
		t.Fatalf("turns = %+v, want one turn on s1", turns)
	}
}

// TestTraceSurvivesSiloCrash: after CrashSilo, a call to an actor that
// lived there is re-placed on the surviving silo and its trace completes
// there — same trace id from root to turn.
func TestTraceSurvivesSiloCrash(t *testing.T) {
	tracer := telemetry.New(telemetry.Config{})
	rt := newTestRuntime(t, Config{Tracer: tracer})
	registerCounter(t, rt)
	addSilo(t, rt, "s1")
	addSilo(t, rt, "s2")
	ctx := context.Background()

	var victim ID
	found := false
	for i := 0; i < 200 && !found; i++ {
		id := ID{"Counter", fmt.Sprintf("c%d", i)}
		if _, err := rt.Call(ctx, id, addMsg{N: 1}); err != nil {
			t.Fatal(err)
		}
		if reg, ok := rt.Directory().Lookup(id.String()); ok && reg.Silo == "s1" {
			victim, found = id, true
		}
	}
	if !found {
		t.Fatal("no actor landed on s1")
	}
	if err := rt.CrashSilo("s1"); err != nil {
		t.Fatal(err)
	}
	before := tracer.Recorded()
	if _, err := rt.Call(ctx, victim, getMsg{}); err != nil {
		t.Fatalf("call after crash: %v", err)
	}
	spans := tracer.Spans()
	var root *telemetry.Span
	for i := range spans {
		sp := &spans[i]
		if sp.Kind == telemetry.KindRoot && sp.Actor == "call "+victim.String() && sp.Err == "" {
			root = sp // keep the last (post-crash) one
		}
	}
	if root == nil {
		t.Fatalf("no successful root for %s after crash (recorded %d -> %d)", victim, before, tracer.Recorded())
	}
	_, turns := spansByKind(spans, root.TraceID)
	onSurvivor := false
	for _, turn := range turns {
		if turn.Silo == "s2" {
			onSurvivor = true
		}
	}
	if !onSurvivor {
		t.Fatalf("trace %d has no turn on surviving silo: %+v", root.TraceID, turns)
	}
}

// TestDisabledTracerRecordsNothing: with the tracer off, the entire call
// path records no spans and no kind stats, and re-enabling works.
func TestDisabledTracerRecordsNothing(t *testing.T) {
	tracer := telemetry.New(telemetry.Config{})
	tracer.SetEnabled(false)
	rt := newTestRuntime(t, Config{Tracer: tracer})
	registerCounter(t, rt)
	addSilo(t, rt, "s1")
	ctx := context.Background()
	if _, err := rt.Call(ctx, ID{"Counter", "a"}, addMsg{1}); err != nil {
		t.Fatal(err)
	}
	if tracer.Recorded() != 0 || len(tracer.KindStats()) != 0 {
		t.Fatalf("disabled tracer recorded: %d spans, stats %+v", tracer.Recorded(), tracer.KindStats())
	}
	tracer.SetEnabled(true)
	if _, err := rt.Call(ctx, ID{"Counter", "a"}, addMsg{1}); err != nil {
		t.Fatal(err)
	}
	if tracer.Recorded() == 0 {
		t.Fatal("re-enabled tracer recorded nothing")
	}
}

// TestIntrospectionSnapshot: the pull-based gauges reflect live
// activations, kinds, and capacity utilization.
func TestIntrospectionSnapshot(t *testing.T) {
	rt := newTestRuntime(t, Config{})
	registerCounter(t, rt)
	if _, err := rt.AddSilo("s1", capacity.NewLimiter(capacity.M5Large, nil)); err != nil {
		t.Fatal(err)
	}
	addSilo(t, rt, "s2")
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := rt.Call(ctx, ID{"Counter", fmt.Sprintf("c%d", i)}, addMsg{1}); err != nil {
			t.Fatal(err)
		}
	}
	snap := rt.IntrospectionSnapshot()
	if len(snap.Silos) != 2 || snap.Silos[0].Name != "s1" || snap.Silos[1].Name != "s2" {
		t.Fatalf("snapshot silos = %+v", snap.Silos)
	}
	total := 0
	for _, s := range snap.Silos {
		total += s.Activations
		if s.Activations > 0 && s.ByKind["Counter"] != s.Activations {
			t.Fatalf("silo %s kinds = %+v", s.Name, s.ByKind)
		}
	}
	if total != 5 {
		t.Fatalf("total activations = %d, want 5", total)
	}
	// s1 has a limiter (idle: utilization 0), s2 has none (-1).
	if snap.Silos[0].Utilization != 0 || snap.Silos[1].Utilization != -1 {
		t.Fatalf("utilizations = %v / %v", snap.Silos[0].Utilization, snap.Silos[1].Utilization)
	}
}
