package core

import (
	"context"

	"aodb/internal/kvstore"
)

// StateStore abstracts where activation state lives. The default
// implementation is the runtime's single grain-state table; the
// replication coordinator substitutes a quorum-replicated store without
// the activation lifecycle knowing the difference. Both error contracts
// carry over from kvstore: a missing key's error matches
// kvstore.ErrNotFound, and a fenced write's matches
// kvstore.ErrVersionMismatch (which is what trips the zombie-activation
// self-deactivation in writeState).
type StateStore interface {
	// Load returns the state bytes and the version the caller's writes
	// must fence on. On a missing key it returns an ErrNotFound-matching
	// error together with the version the caller must still adopt —
	// zero for the plain table, possibly a bumped epoch claim for a
	// replicated store that found a tombstone.
	Load(ctx context.Context, key string) (data []byte, version int64, err error)
	// Store persists data fenced on version and returns the new version.
	Store(ctx context.Context, key string, data []byte, version int64) (int64, error)
}

// tableStateStore is the default StateStore: the runtime's grain-state
// kvstore table, preserving the exact pre-replication Get/PutIf
// behavior (and its hot-path cost).
type tableStateStore struct {
	t *kvstore.Table
}

func (s tableStateStore) Load(ctx context.Context, key string) ([]byte, int64, error) {
	it, err := s.t.Get(ctx, key)
	if err != nil {
		return nil, 0, err
	}
	return it.Value, it.Version, nil
}

func (s tableStateStore) Store(ctx context.Context, key string, data []byte, version int64) (int64, error) {
	return s.t.PutIf(ctx, key, data, version)
}
