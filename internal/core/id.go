package core

import (
	"errors"
	"fmt"
	"strings"
)

// ID names a virtual actor: a Kind registered with the runtime plus an
// application-chosen Key. The actor it names is logically always present;
// whether an activation exists in memory is the runtime's business.
type ID struct {
	Kind string
	Key  string
}

// String renders the canonical "Kind/Key" form used by the directory, the
// state table, and the reminder table.
func (id ID) String() string { return id.Kind + "/" + id.Key }

// IsZero reports whether the ID is empty.
func (id ID) IsZero() bool { return id.Kind == "" && id.Key == "" }

// Validate checks that the ID can be routed.
func (id ID) Validate() error {
	if id.Kind == "" {
		return errors.New("core: actor ID has empty kind")
	}
	if id.Key == "" {
		return errors.New("core: actor ID has empty key")
	}
	if strings.ContainsRune(id.Kind, '/') {
		return fmt.Errorf("core: actor kind %q must not contain '/'", id.Kind)
	}
	return nil
}

// ParseID parses the canonical "Kind/Key" form. Keys may contain slashes;
// only the first slash separates kind from key.
func ParseID(s string) (ID, error) {
	i := strings.IndexByte(s, '/')
	if i <= 0 || i == len(s)-1 {
		return ID{}, fmt.Errorf("core: malformed actor id %q", s)
	}
	id := ID{Kind: s[:i], Key: s[i+1:]}
	return id, id.Validate()
}
