package core

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"aodb/internal/kvstore"
)

// TestRemoveSiloFailover exercises the silo-loss recovery path: a
// persistent actor lives on one silo, the silo is removed, and the next
// call re-activates the actor elsewhere with its persisted state.
func TestRemoveSiloFailover(t *testing.T) {
	kv, err := kvstore.Open(kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	rt := newTestRuntime(t, Config{Store: kv})
	registerCounter(t, rt, WithPersistence(PersistOnDeactivate))
	rt.AddSilo("silo-1", nil)
	rt.AddSilo("silo-2", nil)
	ctx := context.Background()

	// Spread some actors; find one on each silo.
	perSilo := map[string]ID{}
	for i := 0; len(perSilo) < 2 && i < 200; i++ {
		id := ID{"Counter", fmt.Sprintf("c%d", i)}
		if _, err := rt.Call(ctx, id, addMsg{N: i}); err != nil {
			t.Fatal(err)
		}
		reg, ok := rt.Directory().Lookup(id.String())
		if !ok {
			t.Fatal("no registration after call")
		}
		if _, seen := perSilo[reg.Silo]; !seen {
			perSilo[reg.Silo] = id
		}
	}
	victim, ok := perSilo["silo-1"]
	if !ok {
		t.Fatal("no actor landed on silo-1")
	}
	before, err := rt.Call(ctx, victim, getMsg{})
	if err != nil {
		t.Fatal(err)
	}

	if err := rt.RemoveSilo(ctx, "silo-1"); err != nil {
		t.Fatal(err)
	}
	// The actor must come back on silo-2 with its persisted state.
	after, err := rt.Call(ctx, victim, getMsg{})
	if err != nil {
		t.Fatalf("call after silo loss: %v", err)
	}
	if after != before {
		t.Fatalf("state after failover = %v, want %v", after, before)
	}
	reg, ok := rt.Directory().Lookup(victim.String())
	if !ok || reg.Silo != "silo-2" {
		t.Fatalf("registration after failover = %+v, want silo-2", reg)
	}
	// And new work keeps flowing.
	if _, err := rt.Call(ctx, ID{"Counter", "fresh"}, addMsg{1}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveUnknownSilo(t *testing.T) {
	rt := newTestRuntime(t, Config{})
	if err := rt.RemoveSilo(context.Background(), "ghost"); err == nil {
		t.Fatal("removing unknown silo succeeded")
	}
}

func TestRemoveLastSiloLeavesRuntimeCallableAfterReAdd(t *testing.T) {
	rt := newTestRuntime(t, Config{})
	registerCounter(t, rt)
	rt.AddSilo("silo-1", nil)
	ctx := context.Background()
	rt.Call(ctx, ID{"Counter", "x"}, addMsg{1})
	if err := rt.RemoveSilo(ctx, "silo-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Call(ctx, ID{"Counter", "x"}, getMsg{}); err == nil {
		t.Fatal("call with no silos succeeded")
	}
	if _, err := rt.AddSilo("silo-2", nil); err != nil {
		t.Fatal(err)
	}
	v, err := rt.Call(ctx, ID{"Counter", "x"}, getMsg{})
	if err != nil {
		t.Fatal(err)
	}
	// Without a store, state restarts from zero — documented volatility.
	if v.(int) != 0 {
		t.Fatalf("volatile state after re-add = %v, want 0", v)
	}
}

// TestStateWriteBlockedByProvisionedThroughput injects storage throttling
// into the persistence path: a state table with minuscule write capacity
// makes WriteState slow, but the write still succeeds (blocking, not
// failing) — DynamoDB-style throttling semantics.
func TestStateWriteBlockedByProvisionedThroughput(t *testing.T) {
	kv, err := kvstore.Open(kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	rt := newTestRuntime(t, Config{
		Store:           kv,
		StateThroughput: kvstore.Throughput{WriteUnits: 5},
	})
	registerCounter(t, rt, WithPersistence(PersistExplicit))
	rt.AddSilo("silo-1", nil)
	ctx := context.Background()
	// Burn the burst, then time a throttled write.
	for i := 0; i < 5; i++ {
		rt.Call(ctx, ID{"Counter", fmt.Sprintf("w%d", i)}, addMsg{1})
		if _, err := rt.Call(ctx, ID{"Counter", fmt.Sprintf("w%d", i)}, saveMsg{}); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	if _, err := rt.Call(ctx, ID{"Counter", "w0"}, saveMsg{}); err != nil {
		t.Fatalf("throttled write failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("throttled write returned in %v, throttling not applied", elapsed)
	}
}

// TestIDRoundTripProperty: parse(id.String()) == id for all valid IDs.
func TestIDRoundTripProperty(t *testing.T) {
	f := func(kindRaw, keyRaw string) bool {
		kind := strings.ReplaceAll(kindRaw, "/", "_")
		if kind == "" {
			kind = "K"
		}
		key := keyRaw
		if key == "" {
			key = "k"
		}
		id := ID{Kind: kind, Key: key}
		parsed, err := ParseID(id.String())
		if err != nil {
			return false
		}
		return parsed == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestMailboxFIFOProperty: any push sequence pops in order.
func TestMailboxFIFOProperty(t *testing.T) {
	f := func(values []int) bool {
		m := newMailbox()
		for _, v := range values {
			if !m.push(envelope{msg: v}) {
				return false
			}
		}
		for _, want := range values {
			env, ok := m.pop()
			if !ok || env.msg.(int) != want {
				return false
			}
		}
		m.close()
		if _, ok := m.pop(); ok {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMailboxCloseIfEmptyRaces(t *testing.T) {
	// closeIfEmpty must refuse while a message is queued.
	m := newMailbox()
	m.push(envelope{msg: 1})
	if m.closeIfEmpty() {
		t.Fatal("closed non-empty mailbox")
	}
	m.pop()
	if !m.closeIfEmpty() {
		t.Fatal("failed to close empty mailbox")
	}
	if m.push(envelope{msg: 2}) {
		t.Fatal("push into closed mailbox succeeded")
	}
	// Idempotent.
	if !m.closeIfEmpty() {
		t.Fatal("closeIfEmpty on closed mailbox returned false")
	}
}
