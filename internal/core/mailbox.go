package core

import (
	"context"
	"sync"
	"time"

	"aodb/internal/clock"
	"aodb/internal/telemetry"
)

// envelope is one queued message for an activation.
type envelope struct {
	ctx   context.Context
	msg   any
	reply chan turnResult // nil for one-way sends
	chain []string        // synchronous call chain, for cycle detection
	timer bool            // timer ticks do not refresh the idle clock

	// Tracing context, populated only while the runtime's tracer is
	// enabled (zero otherwise, costing nothing).
	trace      telemetry.SpanContext
	enqueuedAt time.Time // when the message entered the mailbox (sampled only)
	remote     bool      // arrived over a cross-silo or external hop

	// hlc is the sender's hybrid-logical-clock stamp, populated only
	// while the runtime's flight journal is enabled (zero otherwise).
	hlc clock.HLC
}

type turnResult struct {
	val any
	err error
}

// mailbox is an unbounded FIFO queue with a cooperative close protocol.
// It is unbounded on purpose: per-actor queues in Orleans are unbounded
// too, and backpressure in this runtime comes from the silo's capacity
// limiter. An unbounded queue is also what lets the latency-percentile
// experiments exhibit honest queueing delay instead of tail-dropping.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []envelope
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// push enqueues env, returning false if the mailbox has been closed (the
// activation is deactivating and the caller must re-resolve the actor).
func (m *mailbox) push(env envelope) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.q = append(m.q, env)
	m.cond.Signal()
	return true
}

// pop dequeues the next envelope, blocking while the mailbox is open and
// empty. It returns ok=false once the mailbox is closed and drained.
func (m *mailbox) pop() (envelope, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.q) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.q) == 0 {
		return envelope{}, false
	}
	env := m.q[0]
	// Shift instead of reslicing forever; the queue is typically tiny.
	copy(m.q, m.q[1:])
	m.q = m.q[:len(m.q)-1]
	return env, true
}

// closeIfEmpty atomically closes the mailbox when it holds no messages,
// returning whether it closed. The idle collector uses this so that a
// message racing in keeps the activation alive.
func (m *mailbox) closeIfEmpty() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return true
	}
	if len(m.q) > 0 {
		return false
	}
	m.closed = true
	m.cond.Broadcast()
	return true
}

// close closes the mailbox unconditionally; queued envelopes will still be
// drained by pop. Used at runtime shutdown.
func (m *mailbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

// depth reports the number of queued messages, for introspection gauges.
func (m *mailbox) depth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.q)
}

// empty reports whether the queue is currently drained.
func (m *mailbox) empty() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.q) == 0
}
