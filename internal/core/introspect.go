package core

import (
	"sort"

	"aodb/internal/telemetry"
)

// IntrospectionSnapshot produces the runtime-gauges view served by the
// telemetry HTTP endpoint: per-silo activation counts (total and by
// kind), mailbox backlog, and capacity utilization. It is pull-based —
// computed on demand from live structures — so keeping the endpoint up
// adds nothing to the message hot path. Runtime implements
// telemetry.RuntimeSource.
func (rt *Runtime) IntrospectionSnapshot() telemetry.RuntimeSnapshot {
	rt.mu.RLock()
	silos := make([]*Silo, 0, len(rt.silos))
	for _, s := range rt.silos {
		silos = append(silos, s)
	}
	rt.mu.RUnlock()
	sort.Slice(silos, func(i, j int) bool { return silos[i].name < silos[j].name })
	snap := telemetry.RuntimeSnapshot{Silos: make([]telemetry.SiloStats, 0, len(silos))}
	for _, s := range silos {
		snap.Silos = append(snap.Silos, s.stats())
	}
	return snap
}

// stats snapshots one silo's live gauges.
func (s *Silo) stats() telemetry.SiloStats {
	st := telemetry.SiloStats{Name: s.name, Utilization: -1}
	s.mu.Lock()
	st.Activations = len(s.catalog)
	if len(s.catalog) > 0 {
		st.ByKind = make(map[string]int)
	}
	acts := make([]*activation, 0, len(s.catalog))
	for id, act := range s.catalog {
		st.ByKind[id.Kind]++
		acts = append(acts, act)
	}
	s.mu.Unlock()
	// Mailbox depths are read outside the catalog lock: each mailbox has
	// its own mutex and the turn path takes it on every message.
	for _, act := range acts {
		d := act.box.depth()
		st.MailboxDepth += d
		if d > st.MailboxMax {
			st.MailboxMax = d
		}
	}
	if s.limiter != nil {
		p := s.limiter.Profile()
		st.Utilization = float64(s.limiter.InUse()) / float64(p.Workers)
	}
	return st
}
