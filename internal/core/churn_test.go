package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"aodb/internal/kvstore"
)

// TestActivationChurn cycles a large actor population through activation
// and collection repeatedly — the "devices dynamically enter and leave
// the IoT environment" lifecycle — and checks that nothing leaks: the
// directory and catalogs return to empty, and state survives each cycle.
func TestActivationChurn(t *testing.T) {
	kv, err := kvstore.Open(kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	rt := newTestRuntime(t, Config{
		Store:        kv,
		IdleAfter:    40 * time.Millisecond,
		CollectEvery: 15 * time.Millisecond,
	})
	registerCounter(t, rt, WithPersistence(PersistOnDeactivate))
	silo1, _ := rt.AddSilo("silo-1", nil)
	silo2, _ := rt.AddSilo("silo-2", nil)
	ctx := context.Background()

	const actors = 300
	const cycles = 3
	for cycle := 1; cycle <= cycles; cycle++ {
		var wg sync.WaitGroup
		for i := 0; i < actors; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				id := ID{"Counter", fmt.Sprintf("churn-%d", i)}
				if _, err := rt.Call(ctx, id, addMsg{N: 1}); err != nil {
					t.Errorf("cycle %d actor %d: %v", cycle, i, err)
				}
			}(i)
		}
		wg.Wait()
		// Wait for total collection.
		deadline := time.Now().Add(10 * time.Second)
		for silo1.Activations()+silo2.Activations() != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("cycle %d: %d activations never collected",
					cycle, silo1.Activations()+silo2.Activations())
			}
			time.Sleep(10 * time.Millisecond)
		}
		if n := rt.Directory().Len(); n != 0 {
			t.Fatalf("cycle %d: directory leaked %d registrations", cycle, n)
		}
	}
	// After N cycles each counter holds exactly N.
	for i := 0; i < actors; i += 37 {
		v, err := rt.Call(ctx, ID{"Counter", fmt.Sprintf("churn-%d", i)}, getMsg{})
		if err != nil {
			t.Fatal(err)
		}
		if v.(int) != cycles {
			t.Fatalf("actor %d = %v after %d cycles", i, v, cycles)
		}
	}
}

// TestCallsDuringCollectionNeverLost hammers one actor while the
// collector aggressively tries to reclaim it; the close-if-empty protocol
// must never drop a message or double-activate.
func TestCallsDuringCollectionNeverLost(t *testing.T) {
	rt := newTestRuntime(t, Config{
		IdleAfter:    1 * time.Millisecond, // collect at every opportunity
		CollectEvery: 2 * time.Millisecond,
	})
	registerCounter(t, rt)
	rt.AddSilo("silo-1", nil)
	ctx := context.Background()
	id := ID{"Counter", "contested"}
	const calls = 300
	sent := 0
	for i := 0; i < calls; i++ {
		if _, err := rt.Call(ctx, id, addMsg{N: 1}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		sent++
		if i%10 == 0 {
			time.Sleep(3 * time.Millisecond) // give the collector a window
		}
	}
	// Without persistence, collection resets the count; what must hold is
	// that every call succeeded (none lost to a closing mailbox) — which
	// the loop above already asserted — and the actor is still healthy.
	if _, err := rt.Call(ctx, id, getMsg{}); err != nil {
		t.Fatal(err)
	}
	if sent != calls {
		t.Fatalf("sent = %d", sent)
	}
}
