package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"aodb/internal/codec"
	"aodb/internal/journal"
	"aodb/internal/transport"
)

// MigrateKind is the reserved transport target kind for live actor
// hand-off RPCs between silos ('!' keeps it out of the actor namespace,
// like replication's "!repl" and gossip's "!gossip").
const MigrateKind = "!migrate"

// movedTTL is how long a silo remembers that an actor was handed off
// (redirecting calls that still land here), long enough for every
// caller's membership view and routing cache to converge on the new
// placement.
const movedTTL = 2 * time.Minute

type movedEntry struct {
	target string
	until  time.Time
}

// migrateDrain asks a silo to hand off one actor: deactivate it with a
// state flush and leave a redirect to Target behind. BudgetMs bounds the
// drain; past it the hand-off is forced (the laggard activation is
// fenced and its registration evicted so the target can proceed).
type migrateDrain struct {
	Target   string
	BudgetMs int64
	// Corr carries the migration's flight-journal correlation id so the
	// drain events a remote source records group with the coordinator's.
	Corr uint64
}

// migrateActivate asks a silo to activate one actor (the second half of
// a hand-off).
type migrateActivate struct {
	Corr uint64
}

// migratePrepare asks the target silo to clear any stale redirect
// marker for the actor before the source drains. Without this, moving
// an actor back to a silo it previously left makes the two markers
// point at each other and redirected calls ping-pong until their hop
// budget runs out.
type migratePrepare struct {
	Corr uint64
}

func init() {
	codec.Register(migrateDrain{})
	codec.Register(migrateActivate{})
	codec.Register(migratePrepare{})
}

// Migrate moves actor id to the target silo: drain-with-state-flush at
// the source (its final write lands before the activation's directory
// registration disappears), then re-activation at the target, which
// loads that state. Calls arriving at the old silo meanwhile are
// redirected — the same wrong-silo path an activation race uses — so
// nothing is lost or double-executed. If the source cannot finish
// draining within ctx's budget the hand-off is forced: the lagging
// activation is fenced (its late state writes fail as stale) and the
// target activates anyway.
//
// Migrating an actor that is not currently active just activates it at
// the target; migrating to the silo already hosting it is a no-op.
func (rt *Runtime) Migrate(ctx context.Context, id ID, target string) error {
	if err := id.Validate(); err != nil {
		return err
	}
	if _, ok := rt.kind(id.Kind); !ok {
		return fmt.Errorf("%w: %q", ErrUnknownKind, id.Kind)
	}
	rt.mu.RLock()
	dead := rt.shutdown
	rt.mu.RUnlock()
	if dead {
		return ErrShutdown
	}
	// One correlation id groups every phase event of this hand-off — on
	// this silo and, riding the RPC payloads, on the source and target —
	// so a merged timeline shows prepare→drain→activate as one story.
	var corr uint64
	if rt.journal.Enabled() {
		corr = rt.journal.NewCorr()
	}
	if reg, ok := rt.directory.Lookup(id.String()); ok && reg.Silo != target {
		if corr != 0 {
			rt.journal.Record(journal.MigratePrepare, id.String(), corr,
				"from="+reg.Silo+" to="+target)
		}
		// Clear any stale marker at the target first (it may have hosted
		// this actor before): during the drain, redirected calls must fall
		// through to the directory there, not bounce straight back here.
		// Best-effort — if the target is truly down, the activate half
		// below reports it.
		if tgt, hosted := rt.Silo(target); hosted {
			tgt.clearMoved(id)
		} else {
			rt.cfg.Transport.Call(ctx, target, rt.migrateReq(id, migratePrepare{Corr: corr}))
		}
		if src, hosted := rt.Silo(reg.Silo); hosted {
			if err := src.migrateOut(ctx, id, target, corr); err != nil {
				return err
			}
		} else {
			budget := int64(0)
			if dl, ok := ctx.Deadline(); ok {
				budget = time.Until(dl).Milliseconds()
			}
			_, err := rt.cfg.Transport.Call(ctx, reg.Silo,
				rt.migrateReq(id, migrateDrain{Target: target, BudgetMs: budget, Corr: corr}))
			if err != nil {
				if !transport.IsUnreachable(err) {
					return err
				}
				// The source is gone; its registration is stale. Evict it so
				// the target can claim the actor.
				rt.directory.Unregister(reg)
			}
		}
	}
	if tgt, hosted := rt.Silo(target); hosted {
		if err := tgt.activateFor(ctx, id, corr); err != nil {
			return err
		}
	} else {
		_, err := rt.cfg.Transport.Call(ctx, target, rt.migrateReq(id, migrateActivate{Corr: corr}))
		if err != nil && !IsWrongSilo(err) {
			return err
		}
	}
	rt.metrics.Counter("core.migrations").Inc()
	return nil
}

// migrateReq builds a MigrateKind RPC, HLC-stamped when the flight
// recorder is on so remote phase events order after the coordinator's.
func (rt *Runtime) migrateReq(id ID, payload any) transport.Request {
	req := transport.Request{
		TargetKind: MigrateKind,
		TargetKey:  id.String(),
		Method:     "call",
		Payload:    payload,
	}
	if rt.journal.Enabled() {
		req.HLC = uint64(rt.journal.Now())
	}
	return req
}

// handleMigrate serves MigrateKind RPCs (registered in New), dispatching
// drain/activate halves of a hand-off to the addressed hosted silo.
func (rt *Runtime) handleMigrate(ctx context.Context, silo string, req transport.Request) (any, error) {
	s, ok := rt.Silo(silo)
	if !ok {
		return nil, fmt.Errorf("core: no silo %q for migrate rpc", silo)
	}
	id, err := ParseID(req.TargetKey)
	if err != nil {
		return nil, err
	}
	switch p := req.Payload.(type) {
	case migrateDrain:
		dctx := ctx
		if p.BudgetMs > 0 {
			var cancel context.CancelFunc
			dctx, cancel = context.WithTimeout(ctx, time.Duration(p.BudgetMs)*time.Millisecond)
			defer cancel()
		}
		return nil, s.migrateOut(dctx, id, p.Target, p.Corr)
	case migrateActivate:
		return nil, s.activateFor(ctx, id, p.Corr)
	case migratePrepare:
		s.clearMoved(id)
		return nil, nil
	}
	return nil, fmt.Errorf("core: bad migrate payload %T", req.Payload)
}

// migrateOut is the source half of a hand-off: leave a redirect marker,
// close the activation's mailbox, and wait for its teardown (which
// flushes state and unregisters it). If ctx expires first the hand-off
// is forced: the laggard is fenced so any state write it still attempts
// fails as stale, and its registration is evicted so the target can
// register. The marker is placed before the drain so calls racing the
// hand-off queue onto the draining mailbox (failing over to the
// redirect once it closes) rather than re-activating here.
func (s *Silo) migrateOut(ctx context.Context, id ID, target string, corr uint64) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return ErrShutdown
	}
	act, active := s.catalog[id]
	if s.moved == nil {
		s.moved = make(map[ID]movedEntry)
	}
	s.moved[id] = movedEntry{target: target, until: s.rt.clk.Now().Add(movedTTL)}
	s.mu.Unlock()
	if !active {
		return nil
	}
	act.box.close()
	select {
	case <-act.drained:
		s.metrics.Counter("core.migrations.out").Inc()
		if s.rt.journal.Enabled() {
			s.rt.journal.Record(journal.MigrateDrain, id.String(), corr, "to="+target)
		}
		return nil
	case <-ctx.Done():
		act.fenced.Store(true)
		s.rt.directory.Unregister(act.reg)
		s.metrics.Counter("core.migrations.forced").Inc()
		if s.rt.journal.Enabled() {
			s.rt.journal.Record(journal.MigrateForced, id.String(), corr,
				"to="+target+" (laggard fenced)")
		}
		return nil
	}
}

// clearMoved drops a redirect marker (hand-off prepare step).
func (s *Silo) clearMoved(id ID) {
	s.mu.Lock()
	delete(s.moved, id)
	s.mu.Unlock()
}

// activateFor is the target half of a hand-off: drop any stale redirect
// marker (the actor is moving here) and activate through the ordinary
// resolve path, so the registration race and state load behave exactly
// as they would for an incoming call. Losing the race to a third silo
// is fine — the actor is live, which is all a migration guarantees.
func (s *Silo) activateFor(ctx context.Context, id ID, corr uint64) error {
	s.mu.Lock()
	delete(s.moved, id)
	_, existed := s.catalog[id]
	s.mu.Unlock()
	if _, err := s.resolve(ctx, id); err != nil {
		if IsWrongSilo(err) {
			return nil
		}
		return err
	}
	if !existed {
		s.metrics.Counter("core.migrations.in").Inc()
		if s.rt.journal.Enabled() {
			s.rt.journal.Record(journal.MigrateActivate, id.String(), corr, "")
		}
	}
	return nil
}

// ActiveIDs snapshots the IDs of this silo's live activations, sorted —
// the rebalancer's input for hash-diff planning.
func (s *Silo) ActiveIDs() []ID {
	s.mu.Lock()
	ids := make([]ID, 0, len(s.catalog))
	for id := range s.catalog {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Kind != ids[j].Kind {
			return ids[i].Kind < ids[j].Kind
		}
		return ids[i].Key < ids[j].Key
	})
	return ids
}
