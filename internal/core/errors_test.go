package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"aodb/internal/transport"
)

// TestTransientTaxonomy pins down the retryability classification every
// layer of the runtime relies on. Each error the call path can produce is
// either transient (retry may succeed) or permanent (retry is wasted or
// harmful), and wrapping with %w must preserve the verdict.
func TestTransientTaxonomy(t *testing.T) {
	cases := []struct {
		name      string
		err       error
		transient bool
	}{
		{"nil", nil, false},
		{"wrong silo race", &wrongSiloError{Actor: "K/a", Winner: "s2"}, true},
		{"explicit transient mark", fmt.Errorf("core: lost to crash: %w", ErrTransient), true},
		{"transport unreachable", &transport.UnreachableError{Node: "s1", Err: errors.New("dial refused")}, true},
		{"circuit open", transport.ErrCircuitOpen, true},
		{"no silos", ErrNoSilos, true},
		{"stale activation fence", ErrStaleActivation, true},
		{"deadline exceeded", context.DeadlineExceeded, true},
		{"unknown kind", ErrUnknownKind, false},
		{"shutdown", ErrShutdown, false},
		{"call cycle", ErrCallCycle, false},
		{"actor panic", &PanicError{Actor: "K/a", Value: "boom"}, false},
		{"application error", errors.New("handler said no"), false},
		{"context canceled", context.Canceled, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Transient(tc.err); got != tc.transient {
				t.Fatalf("Transient(%v) = %v, want %v", tc.err, got, tc.transient)
			}
			if tc.err == nil {
				return
			}
			wrapped := fmt.Errorf("outer: %w", tc.err)
			if got := Transient(wrapped); got != tc.transient {
				t.Fatalf("Transient(wrapped %v) = %v, want %v", tc.err, got, tc.transient)
			}
		})
	}
}

// TestSentinelMatching: the exported sentinels work with errors.Is/As
// through wrapping, and the marker Is methods don't overreach.
func TestSentinelMatching(t *testing.T) {
	perr := error(&PanicError{Actor: "K/a", Value: 42, Stack: "stack"})
	if !errors.Is(perr, ErrActorPanic) {
		t.Fatal("PanicError does not match ErrActorPanic")
	}
	if errors.Is(perr, ErrTransient) {
		t.Fatal("PanicError must not match ErrTransient")
	}
	var asPanic *PanicError
	if !errors.As(fmt.Errorf("turn failed: %w", perr), &asPanic) || asPanic.Value != 42 {
		t.Fatalf("errors.As through wrap failed: %+v", asPanic)
	}

	werr := error(&wrongSiloError{Actor: "K/a", Winner: "s2"})
	if !errors.Is(werr, ErrTransient) {
		t.Fatal("wrongSiloError does not match ErrTransient")
	}
	if errors.Is(werr, ErrActorPanic) {
		t.Fatal("wrongSiloError must not match ErrActorPanic")
	}
	if !IsWrongSilo(fmt.Errorf("routing: %w", werr)) {
		t.Fatal("IsWrongSilo fails through wrapping")
	}
	if IsWrongSilo(ErrTransient) {
		t.Fatal("IsWrongSilo matches the bare transient sentinel")
	}
}

// TestCallErrorsKeepClassification: errors surfaced by real Calls stay
// classified after the runtime wraps them with routing context.
func TestCallErrorsKeepClassification(t *testing.T) {
	rt := newTestRuntime(t, Config{Retry: RetryPolicy{Disabled: true}})
	registerCounter(t, rt)
	// No silos: the call must fail ErrNoSilos and classify transient.
	_, err := rt.Call(context.Background(), ID{"Counter", "a"}, getMsg{})
	if !errors.Is(err, ErrNoSilos) || !Transient(err) {
		t.Fatalf("no-silos call: %v (transient=%v)", err, Transient(err))
	}
	// Unknown kind is permanent.
	_, err = rt.Call(context.Background(), ID{"Ghost", "a"}, getMsg{})
	if !errors.Is(err, ErrUnknownKind) || Transient(err) {
		t.Fatalf("unknown-kind call: %v (transient=%v)", err, Transient(err))
	}
}
