package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"sync"

	"aodb/internal/capacity"
	"aodb/internal/clock"
	"aodb/internal/directory"
	"aodb/internal/kvstore"
	"aodb/internal/metrics"
	"aodb/internal/telemetry"
	"aodb/internal/transport"
)

// Silo is one logical server hosting activations. In simulated multi-
// server runs all silos live in one Runtime and process; in a real TCP
// deployment each process hosts one.
type Silo struct {
	name    string
	rt      *Runtime
	limiter *capacity.Limiter // nil = unbounded
	metrics *metrics.Registry

	mu      sync.Mutex
	catalog map[ID]*activation
	closing bool
	// moved records actors handed off to another silo: calls landing here
	// are redirected instead of re-activating locally. Entries expire
	// (pruned by the collector) once cluster views have converged on the
	// new placement. This is what keeps a TCP-mode silo — whose directory
	// is process-local — from resurrecting an actor it just migrated out.
	moved map[ID]movedEntry

	collectorStop chan struct{}
	collectorDone chan struct{}
}

func newSilo(name string, rt *Runtime, limiter *capacity.Limiter) *Silo {
	return &Silo{
		name:          name,
		rt:            rt,
		limiter:       limiter,
		metrics:       rt.metrics,
		catalog:       make(map[ID]*activation),
		collectorStop: make(chan struct{}),
		collectorDone: make(chan struct{}),
	}
}

// Name returns the silo's cluster-unique name.
func (s *Silo) Name() string { return s.name }

// Activations returns the number of live activations (for tests and
// benchmark reporting).
func (s *Silo) Activations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.catalog)
}

// handle is the transport-facing entry point for messages addressed to
// actors this silo should host.
func (s *Silo) handle(ctx context.Context, req transport.Request) (any, error) {
	// Merge the sender's HLC stamp before anything else runs, so every
	// event this delivery causes — service RPCs included — orders after
	// the send. One atomic load when the flight recorder is off.
	var hlc clock.HLC
	if s.rt.journal.Enabled() && req.HLC != 0 {
		hlc = clock.HLC(req.HLC)
		s.rt.journal.Observe(hlc)
	}
	// Reserved service kinds (replication RPCs) bypass actor resolution;
	// a runtime with no services pays one atomic load and a nil check.
	if h := s.rt.service(req.TargetKind); h != nil {
		return h(ctx, s.name, req)
	}
	id := ID{Kind: req.TargetKind, Key: req.TargetKey}
	// An empty sender is an external client; both that and another silo's
	// name count as a remote hop for trace attribution.
	remote := req.Sender != s.name
	return s.deliver(ctx, id, req.Payload, req.Method != "tell", req.Chain, req.Trace, remote, hlc)
}

// deliver routes one message to the actor's activation, creating it if
// needed, and waits for the reply when needReply is set.
func (s *Silo) deliver(ctx context.Context, id ID, msg any, needReply bool, chain []string, trace telemetry.SpanContext, remote bool, hlc clock.HLC) (any, error) {
	var reply chan turnResult
	turnCtx := ctx
	if needReply {
		reply = make(chan turnResult, 1)
	} else {
		// One-way deliveries are acknowledged at enqueue; the turn itself
		// must not be cancelled when the sender moves on.
		turnCtx = context.WithoutCancel(ctx)
	}
	env := envelope{ctx: turnCtx, msg: msg, reply: reply, chain: chain, hlc: hlc}
	if s.rt.tracer.Enabled() { // the one check disabled telemetry costs here
		env.trace = trace
		env.remote = remote
		if trace.Sampled {
			// The enqueue timestamp feeds the span's mailbox-wait
			// component; only sampled messages pay the clock read.
			env.enqueuedAt = s.rt.clk.Now()
		}
	}
	for {
		act, err := s.resolve(ctx, id)
		if err != nil {
			return nil, err
		}
		if act.box.push(env) {
			break
		}
		// The activation closed between resolve and push; wait for its
		// teardown to finish, then re-resolve.
		select {
		case <-act.drained:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if !needReply {
		return nil, nil
	}
	select {
	case res := <-reply:
		return res.val, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// resolve returns the live activation for id on this silo, activating the
// actor if this silo wins the directory race. It returns wrongSiloError
// when another silo holds the activation.
func (s *Silo) resolve(ctx context.Context, id ID) (*activation, error) {
	cfg, ok := s.rt.kind(id.Kind)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownKind, id.Kind)
	}
	for {
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			return nil, ErrShutdown
		}
		if act, ok := s.catalog[id]; ok {
			s.mu.Unlock()
			return act, nil
		}
		if me, ok := s.moved[id]; ok {
			if s.rt.clk.Now().Before(me.until) {
				s.mu.Unlock()
				return nil, &wrongSiloError{Actor: id.String(), Winner: me.target}
			}
			delete(s.moved, id)
		}
		s.mu.Unlock()

		reg, err := s.rt.directory.Register(id.String(), s.name)
		if err != nil {
			if !errors.Is(err, directory.ErrAlreadyRegistered) {
				return nil, err
			}
			if reg.Silo != s.name {
				return nil, &wrongSiloError{Actor: id.String(), Winner: reg.Silo}
			}
			// Registered to this silo but not in the catalog: a previous
			// activation is mid-teardown. Yield and retry.
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			default:
			}
			waitTimer := s.rt.clk.NewTimer(100 * time.Microsecond)
			select {
			case <-ctx.Done():
				waitTimer.Stop()
				return nil, ctx.Err()
			case <-waitTimer.C():
			}
			continue
		}

		act := newActivation(id, s, cfg, reg)
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			s.rt.directory.Unregister(reg)
			return nil, ErrShutdown
		}
		s.catalog[id] = act
		s.mu.Unlock()
		go act.run()
		return act, nil
	}
}

// removeActivation drops a fully deactivated activation from the catalog.
func (s *Silo) removeActivation(a *activation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.catalog[a.id]; ok && cur == a {
		delete(s.catalog, a.id)
	}
}

// collector periodically deactivates idle activations, the analog of
// Orleans reclaiming grains that "have been standing idle for too long".
func (s *Silo) collector(every time.Duration) {
	defer close(s.collectorDone)
	t := s.rt.clk.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.collectorStop:
			return
		case <-t.C():
			s.collectIdle()
		}
	}
}

func (s *Silo) collectIdle() {
	now := s.rt.clk.Now()
	s.mu.Lock()
	for id, me := range s.moved {
		if now.After(me.until) {
			delete(s.moved, id)
		}
	}
	candidates := make([]*activation, 0)
	for _, act := range s.catalog {
		idleAfter := act.cfg.idleAfter
		if idleAfter == 0 {
			idleAfter = s.rt.cfg.IdleAfter
		}
		if act.idleFor(now) >= idleAfter {
			candidates = append(candidates, act)
		}
	}
	s.mu.Unlock()
	for _, act := range candidates {
		// closeIfEmpty loses the race to any in-flight message, which is
		// exactly right: traffic keeps an activation alive.
		act.box.closeIfEmpty()
	}
}

// crashAll abruptly kills every activation: mailboxes close, queued and
// in-flight work fails transient, and teardown skips hooks and state
// writes — in-memory state is lost exactly as a process crash would lose
// it. It does not wait for activation goroutines: a crash is not a drain.
func (s *Silo) crashAll() {
	s.mu.Lock()
	s.closing = true
	acts := make([]*activation, 0, len(s.catalog))
	for _, a := range s.catalog {
		acts = append(acts, a)
	}
	s.mu.Unlock()
	for _, a := range acts {
		a.crashed.Store(true)
		a.box.close()
	}
}

// drainAll synchronously deactivates every activation (shutdown path).
func (s *Silo) drainAll(ctx context.Context) error {
	s.mu.Lock()
	s.closing = true
	acts := make([]*activation, 0, len(s.catalog))
	for _, a := range s.catalog {
		acts = append(acts, a)
	}
	s.mu.Unlock()
	for _, a := range acts {
		a.box.close()
	}
	for _, a := range acts {
		select {
		case <-a.drained:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

func isNotFound(err error) bool { return errors.Is(err, kvstore.ErrNotFound) }
