package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"aodb/internal/capacity"
	"aodb/internal/directory"
	"aodb/internal/journal"
	"aodb/internal/kvstore"
	"aodb/internal/telemetry"
)

// activation is one in-memory instance of a virtual actor, owned by a
// silo. All application code for the actor runs on the activation's single
// mailbox goroutine.
type activation struct {
	id    ID
	silo  *Silo
	cfg   *kindConfig
	actor Actor
	box   *mailbox
	reg   directory.Registration

	lastBusy atomic.Int64 // unix nanos of last non-timer turn
	crashed  atomic.Bool  // silo crash: skip all teardown persistence
	// fenced marks an activation cut off by a forced migration hand-off:
	// ownership has already moved, so any state write it still attempts
	// must fail as stale rather than clobber the successor's writes.
	fenced atomic.Bool

	// stateVersion is the kvstore version the activation's state was
	// loaded at; writes are fenced with PutIf so a zombie activation (one
	// that survived a simulated silo crash mid-turn) can never clobber
	// its successor's state. Only touched on the mailbox goroutine.
	stateVersion int64

	// cur is the span of the turn currently executing, when that turn is
	// sampled. Set and cleared by the mailbox goroutine; Context methods
	// and the kvstore instrumentation read it via a.context.
	cur *telemetry.Span

	timersMu sync.Mutex
	timers   map[string]func() // name -> stop

	drained chan struct{} // closed after full deactivation cleanup
}

func newActivation(id ID, silo *Silo, cfg *kindConfig, reg directory.Registration) *activation {
	a := &activation{
		id:      id,
		silo:    silo,
		cfg:     cfg,
		actor:   cfg.factory(),
		box:     newMailbox(),
		reg:     reg,
		timers:  make(map[string]func()),
		drained: make(chan struct{}),
	}
	a.lastBusy.Store(silo.rt.clk.Now().UnixNano())
	return a
}

// run is the mailbox goroutine: activate, process turns, deactivate. A
// panic in any turn poisons the activation: the panicking call gets a
// PanicError, queued and late messages fail transient (so retries reach a
// fresh activation), and the silo process itself never crashes.
func (a *activation) run() {
	activateErr := a.activate()
	if activateErr != nil {
		// Fail every queued message, then tear down so the next call can
		// retry with a fresh activation.
		a.box.close()
	}
	var poison error
	for {
		env, ok := a.box.pop()
		if !ok {
			break
		}
		if activateErr != nil {
			env.fail(fmt.Errorf("core: activating %s: %w", a.id, activateErr))
			continue
		}
		if a.crashed.Load() {
			env.fail(fmt.Errorf("core: %s lost to silo crash: %w", a.id, ErrTransient))
			continue
		}
		if poison != nil {
			env.fail(fmt.Errorf("core: %s deactivating after panic: %w", a.id, ErrTransient))
			continue
		}
		if perr := a.turn(env); perr != nil {
			poison = perr
			a.box.close()
		}
	}
	dirty := poison != nil || a.crashed.Load()
	a.deactivate(activateErr == nil, dirty)
}

// activate loads persistent state and runs the OnActivate hook. Panics in
// either are recovered into an activation error.
func (a *activation) activate() (err error) {
	defer func() {
		if r := recover(); r != nil {
			a.silo.metrics.Counter("core.panics").Inc()
			err = &PanicError{Actor: a.id.String(), Value: r, Stack: string(debug.Stack())}
		}
	}()
	cctx := a.context(context.Background(), nil)
	if a.cfg.persist != PersistNone {
		if err := a.loadState(cctx); err != nil {
			return err
		}
	}
	if hook, ok := a.actor.(Activator); ok {
		if err := hook.OnActivate(cctx); err != nil {
			return err
		}
	}
	a.silo.metrics.Counter("core.activations").Inc()
	a.silo.metrics.Gauge("core.active").Add(1)
	return nil
}

// turn executes one message under the silo's capacity limiter. It returns
// non-nil only when the actor panicked, which poisons the activation.
func (a *activation) turn(env envelope) (panicked error) {
	if !env.timer {
		a.lastBusy.Store(a.silo.rt.clk.Now().UnixNano())
	}
	ctx := env.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	// One enabled check covers both the always-on per-kind stats and the
	// sampled-path span; disabled tracing pays nothing further.
	tr := a.silo.rt.tracer
	var sp *telemetry.Span
	var tm *capacity.TurnTiming
	var turnStart time.Time
	if tr.Enabled() {
		turnStart = a.silo.rt.clk.Now()
		if sp = tr.StartTurn(env.trace, a.id.String(), a.silo.name); sp != nil {
			sp.Remote = env.remote
			if !env.enqueuedAt.IsZero() {
				sp.Mailbox = turnStart.Sub(env.enqueuedAt)
			}
			tm = new(capacity.TurnTiming)
			a.cur = sp
		}
	}
	// The hot-spot profiler accounts every turn (not just sampled ones):
	// mailbox backlog at turn start, then CPU after the turn completes.
	// Disabled profiling pays exactly this one check.
	prof := a.silo.rt.profiler
	profiling := prof.Enabled()
	var profDepth int
	if profiling {
		profDepth = a.box.depth()
		if tm == nil {
			tm = new(capacity.TurnTiming)
		}
	}
	// The flight recorder needs wall time per turn to spot SLO breaches;
	// disabled it pays exactly this one check.
	jr := a.silo.rt.journal
	journaling := jr.Enabled()
	if journaling && turnStart.IsZero() {
		turnStart = a.silo.rt.clk.Now()
	}
	timeExec := sp != nil || profiling
	cost := a.silo.rt.costOf(a.id, env.msg)
	var turnErr error
	var execDur time.Duration
	err := a.silo.limiter.ExecuteTimed(ctx, cost, func() error {
		cctx := a.context(ctx, env.chain)
		var execStart time.Time
		if timeExec {
			execStart = a.silo.rt.clk.Now()
		}
		v, err := a.invoke(cctx, env.msg)
		if timeExec {
			execDur = a.silo.rt.clk.Since(execStart)
		}
		turnErr = err
		if perr, ok := err.(*PanicError); ok {
			panicked = perr
			v = nil
		}
		if env.reply != nil {
			env.reply <- turnResult{val: v, err: err}
		}
		return nil
	}, tm)
	if err != nil {
		env.fail(err)
		if turnErr == nil {
			turnErr = err
		}
	}
	if sp != nil {
		sp.Exec = execDur
		sp.CPUWait = tm.SlotWait
		sp.CPUBurn = tm.Burn
		a.cur = nil
		tr.Finish(sp, turnErr)
	}
	if profiling {
		// CPU attribution: simulated burn (dominant on capacity-limited
		// silos) plus real handler wall time (dominant without a limiter).
		prof.ObserveTurn(a.id.String(), a.id.Kind, a.silo.name, tm.Burn+execDur, profDepth)
	}
	if !turnStart.IsZero() {
		turnDur := a.silo.rt.clk.Since(turnStart)
		if tr.Enabled() {
			tr.ObserveTurn(a.id.Kind, turnDur)
		}
		if journaling {
			corr := env.trace.TraceID
			if panicked != nil {
				jr.Record(journal.ActorPanic, a.id.String(), corr, "turn panicked")
			}
			jr.ObserveTurn(a.id.String(), corr, turnDur)
		}
	}
	a.silo.metrics.Counter("core.turns").Inc()
	return panicked
}

// invoke runs the actor handler for one turn, converting panics into
// PanicError so application bugs and injected faults are isolated to the
// activation instead of taking down the silo process.
func (a *activation) invoke(cctx *Context, msg any) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			a.silo.metrics.Counter("core.panics").Inc()
			v = nil
			err = &PanicError{Actor: a.id.String(), Value: r, Stack: string(debug.Stack())}
		}
	}()
	if hook := a.silo.rt.cfg.BeforeTurn; hook != nil {
		hook(a.id, msg)
	}
	return a.actor.Receive(cctx, msg)
}

// deactivate runs teardown after the mailbox has drained. The order
// matters: hooks and the final state write complete before the directory
// registration disappears, so a successor activation can never load stale
// state. A dirty teardown (panic poison or silo crash) skips hooks and
// persistence: the in-memory state is suspect or deliberately "lost".
func (a *activation) deactivate(wasActive, dirty bool) {
	a.stopAllTimers()
	if wasActive {
		if !dirty {
			a.teardownHooks()
		}
		a.silo.metrics.Gauge("core.active").Add(-1)
		a.silo.metrics.Counter("core.deactivations").Inc()
	}
	a.silo.rt.directory.Unregister(a.reg)
	a.silo.removeActivation(a)
	close(a.drained)
}

// teardownHooks runs OnDeactivate and the final state write, recovering
// panics so a buggy teardown cannot crash the silo.
func (a *activation) teardownHooks() {
	defer func() {
		if r := recover(); r != nil {
			a.silo.metrics.Counter("core.panics").Inc()
			a.silo.metrics.Counter("core.deactivate_hook_errors").Inc()
		}
	}()
	cctx := a.context(context.Background(), nil)
	if hook, ok := a.actor.(Deactivator); ok {
		if err := hook.OnDeactivate(cctx); err != nil {
			a.silo.metrics.Counter("core.deactivate_hook_errors").Inc()
		}
	}
	if a.cfg.persist == PersistOnDeactivate {
		if err := a.writeState(cctx); err != nil {
			a.silo.metrics.Counter("core.state_write_errors").Inc()
		}
	}
}

func (a *activation) context(ctx context.Context, chain []string) *Context {
	if a.cur != nil {
		// Carry the turn's span in the context so the kvstore layer can
		// attribute storage time without importing core.
		ctx = telemetry.WithSpan(ctx, a.cur)
	}
	return &Context{Context: ctx, rt: a.silo.rt, silo: a.silo, self: a.id, act: a, chain: chain}
}

// loadState hydrates a Stateful actor from the state store, remembering
// the version it loaded so later writes can be fenced.
func (a *activation) loadState(ctx context.Context) error {
	st, ok := a.actor.(Stateful)
	if !ok || a.silo.rt.states == nil {
		return nil
	}
	data, ver, err := a.silo.rt.states.Load(ctx, a.id.String())
	if err != nil {
		if isNotFound(err) {
			// First activation ever: keep zero-value state, but adopt the
			// store's version claim — zero for a plain table, a bumped
			// epoch when a replicated store found a tombstone.
			a.stateVersion = ver
			return nil
		}
		return err
	}
	if err := json.Unmarshal(data, st.State()); err != nil {
		return fmt.Errorf("core: corrupt state for %s: %w", a.id, err)
	}
	a.stateVersion = ver
	if prof := a.silo.rt.profiler; prof.Enabled() {
		prof.ObserveState(a.id.String(), a.id.Kind, len(data))
	}
	return nil
}

// writeState persists a Stateful actor's state with a conditional put
// fenced on the version this activation last observed. A mismatch means
// a successor activation (created after this silo was declared crashed)
// has already written; this activation is a zombie. It deactivates itself
// so queued work re-routes to the live activation, and reports
// ErrStaleActivation — transient, because a retry reaches fresh state.
func (a *activation) writeState(ctx context.Context) error {
	st, ok := a.actor.(Stateful)
	if !ok {
		return fmt.Errorf("core: %s is not Stateful", a.id)
	}
	if a.silo.rt.states == nil {
		return nil // no store configured: treat as volatile
	}
	if a.fenced.Load() {
		// A forced migration already moved ownership; this zombie's write
		// must not land. (With a replicated state store the version fence
		// would also catch it — the successor's load bumps the epoch — but
		// a plain table load does not, so the local fence closes that
		// window.)
		a.silo.metrics.Counter("core.stale_writes_fenced").Inc()
		a.box.close() // self-deactivate; successor owns the state now
		return fmt.Errorf("%w: %s migrated away mid-write", ErrStaleActivation, a.id)
	}
	data, err := json.Marshal(st.State())
	if err != nil {
		return err
	}
	next, err := a.silo.rt.states.Store(ctx, a.id.String(), data, a.stateVersion)
	if err != nil {
		if errors.Is(err, kvstore.ErrVersionMismatch) {
			a.silo.metrics.Counter("core.stale_writes_fenced").Inc()
			a.box.close() // self-deactivate; successor owns the state now
			return fmt.Errorf("%w: %s at v%d: %v", ErrStaleActivation, a.id, a.stateVersion, err)
		}
		return err
	}
	a.stateVersion = next
	a.silo.metrics.Counter("core.state_writes").Inc()
	if prof := a.silo.rt.profiler; prof.Enabled() {
		prof.ObserveState(a.id.String(), a.id.Kind, len(data))
	}
	return nil
}

// idleFor returns how long the activation has gone without real traffic.
func (a *activation) idleFor(now time.Time) time.Duration {
	return now.Sub(time.Unix(0, a.lastBusy.Load()))
}

// registerTimer installs a per-activation timer delivering msg every
// period. Timer ticks do not refresh the idle clock, matching Orleans
// semantics where timers do not keep a grain alive.
func (a *activation) registerTimer(name string, period time.Duration, msg any) error {
	if period <= 0 {
		return fmt.Errorf("core: timer %q period must be positive", name)
	}
	a.timersMu.Lock()
	defer a.timersMu.Unlock()
	if _, ok := a.timers[name]; ok {
		return fmt.Errorf("core: timer %q already registered on %s", name, a.id)
	}
	stop := make(chan struct{})
	a.timers[name] = func() { close(stop) }
	ticker := a.silo.rt.clk.NewTicker(period)
	go func() {
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C():
				if !a.box.push(envelope{msg: msg, timer: true}) {
					return // deactivating
				}
			}
		}
	}()
	return nil
}

// cancelTimer stops a named timer; unknown names are ignored.
func (a *activation) cancelTimer(name string) {
	a.timersMu.Lock()
	defer a.timersMu.Unlock()
	if stop, ok := a.timers[name]; ok {
		stop()
		delete(a.timers, name)
	}
}

func (a *activation) stopAllTimers() {
	a.timersMu.Lock()
	defer a.timersMu.Unlock()
	for name, stop := range a.timers {
		stop()
		delete(a.timers, name)
	}
}

func (e envelope) fail(err error) {
	if e.reply != nil {
		e.reply <- turnResult{err: err}
	}
}
