package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aodb/internal/directory"
)

// activation is one in-memory instance of a virtual actor, owned by a
// silo. All application code for the actor runs on the activation's single
// mailbox goroutine.
type activation struct {
	id    ID
	silo  *Silo
	cfg   *kindConfig
	actor Actor
	box   *mailbox
	reg   directory.Registration

	lastBusy atomic.Int64 // unix nanos of last non-timer turn

	timersMu sync.Mutex
	timers   map[string]func() // name -> stop

	drained chan struct{} // closed after full deactivation cleanup
}

func newActivation(id ID, silo *Silo, cfg *kindConfig, reg directory.Registration) *activation {
	a := &activation{
		id:      id,
		silo:    silo,
		cfg:     cfg,
		actor:   cfg.factory(),
		box:     newMailbox(),
		reg:     reg,
		timers:  make(map[string]func()),
		drained: make(chan struct{}),
	}
	a.lastBusy.Store(silo.rt.clk.Now().UnixNano())
	return a
}

// run is the mailbox goroutine: activate, process turns, deactivate.
func (a *activation) run() {
	activateErr := a.activate()
	if activateErr != nil {
		// Fail every queued message, then tear down so the next call can
		// retry with a fresh activation.
		a.box.close()
	}
	for {
		env, ok := a.box.pop()
		if !ok {
			break
		}
		if activateErr != nil {
			env.fail(fmt.Errorf("core: activating %s: %w", a.id, activateErr))
			continue
		}
		a.turn(env)
	}
	a.deactivate(activateErr == nil)
}

// activate loads persistent state and runs the OnActivate hook.
func (a *activation) activate() error {
	cctx := a.context(context.Background(), nil)
	if a.cfg.persist != PersistNone {
		if err := a.loadState(cctx); err != nil {
			return err
		}
	}
	if hook, ok := a.actor.(Activator); ok {
		if err := hook.OnActivate(cctx); err != nil {
			return err
		}
	}
	a.silo.metrics.Counter("core.activations").Inc()
	a.silo.metrics.Gauge("core.active").Add(1)
	return nil
}

// turn executes one message under the silo's capacity limiter.
func (a *activation) turn(env envelope) {
	if !env.timer {
		a.lastBusy.Store(a.silo.rt.clk.Now().UnixNano())
	}
	ctx := env.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	cost := a.silo.rt.costOf(a.id, env.msg)
	err := a.silo.limiter.Execute(ctx, cost, func() error {
		cctx := a.context(ctx, env.chain)
		v, err := a.actor.Receive(cctx, env.msg)
		if env.reply != nil {
			env.reply <- turnResult{val: v, err: err}
		}
		return nil
	})
	if err != nil {
		env.fail(err)
	}
	a.silo.metrics.Counter("core.turns").Inc()
}

// deactivate runs teardown after the mailbox has drained. The order
// matters: hooks and the final state write complete before the directory
// registration disappears, so a successor activation can never load stale
// state.
func (a *activation) deactivate(wasActive bool) {
	a.stopAllTimers()
	if wasActive {
		cctx := a.context(context.Background(), nil)
		if hook, ok := a.actor.(Deactivator); ok {
			if err := hook.OnDeactivate(cctx); err != nil {
				a.silo.metrics.Counter("core.deactivate_hook_errors").Inc()
			}
		}
		if a.cfg.persist == PersistOnDeactivate {
			if err := a.writeState(cctx); err != nil {
				a.silo.metrics.Counter("core.state_write_errors").Inc()
			}
		}
		a.silo.metrics.Gauge("core.active").Add(-1)
		a.silo.metrics.Counter("core.deactivations").Inc()
	}
	a.silo.rt.directory.Unregister(a.reg)
	a.silo.removeActivation(a)
	close(a.drained)
}

func (a *activation) context(ctx context.Context, chain []string) *Context {
	return &Context{Context: ctx, rt: a.silo.rt, silo: a.silo, self: a.id, act: a, chain: chain}
}

// loadState hydrates a Stateful actor from the state table.
func (a *activation) loadState(ctx context.Context) error {
	st, ok := a.actor.(Stateful)
	if !ok || a.silo.rt.stateTable == nil {
		return nil
	}
	it, err := a.silo.rt.stateTable.Get(ctx, a.id.String())
	if err != nil {
		if isNotFound(err) {
			return nil // first activation ever: keep zero-value state
		}
		return err
	}
	if err := json.Unmarshal(it.Value, st.State()); err != nil {
		return fmt.Errorf("core: corrupt state for %s: %w", a.id, err)
	}
	return nil
}

// writeState persists a Stateful actor's state.
func (a *activation) writeState(ctx context.Context) error {
	st, ok := a.actor.(Stateful)
	if !ok {
		return fmt.Errorf("core: %s is not Stateful", a.id)
	}
	if a.silo.rt.stateTable == nil {
		return nil // no store configured: treat as volatile
	}
	data, err := json.Marshal(st.State())
	if err != nil {
		return err
	}
	_, err = a.silo.rt.stateTable.Put(ctx, a.id.String(), data)
	if err == nil {
		a.silo.metrics.Counter("core.state_writes").Inc()
	}
	return err
}

// idleFor returns how long the activation has gone without real traffic.
func (a *activation) idleFor(now time.Time) time.Duration {
	return now.Sub(time.Unix(0, a.lastBusy.Load()))
}

// registerTimer installs a per-activation timer delivering msg every
// period. Timer ticks do not refresh the idle clock, matching Orleans
// semantics where timers do not keep a grain alive.
func (a *activation) registerTimer(name string, period time.Duration, msg any) error {
	if period <= 0 {
		return fmt.Errorf("core: timer %q period must be positive", name)
	}
	a.timersMu.Lock()
	defer a.timersMu.Unlock()
	if _, ok := a.timers[name]; ok {
		return fmt.Errorf("core: timer %q already registered on %s", name, a.id)
	}
	stop := make(chan struct{})
	a.timers[name] = func() { close(stop) }
	ticker := a.silo.rt.clk.NewTicker(period)
	go func() {
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C():
				if !a.box.push(envelope{msg: msg, timer: true}) {
					return // deactivating
				}
			}
		}
	}()
	return nil
}

// cancelTimer stops a named timer; unknown names are ignored.
func (a *activation) cancelTimer(name string) {
	a.timersMu.Lock()
	defer a.timersMu.Unlock()
	if stop, ok := a.timers[name]; ok {
		stop()
		delete(a.timers, name)
	}
}

func (a *activation) stopAllTimers() {
	a.timersMu.Lock()
	defer a.timersMu.Unlock()
	for name, stop := range a.timers {
		stop()
		delete(a.timers, name)
	}
}

func (e envelope) fail(err error) {
	if e.reply != nil {
		e.reply <- turnResult{err: err}
	}
}
