package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aodb/internal/capacity"
	"aodb/internal/clock"
	"aodb/internal/directory"
	"aodb/internal/journal"
	"aodb/internal/kvstore"
	"aodb/internal/metrics"
	"aodb/internal/placement"
	"aodb/internal/systemstore"
	"aodb/internal/telemetry"
	"aodb/internal/transport"
)

// CostFunc assigns a simulated CPU cost to one actor turn, used with
// capacity-limited silos to reproduce bounded-server behaviour. A nil
// CostFunc means all turns are free (still bounded in concurrency if the
// silo has a limiter).
type CostFunc func(id ID, msg any) time.Duration

// ViewProvider supplies the current set of active silos for placement.
type ViewProvider interface {
	View() []string
}

// RetryPolicy configures the self-healing call path: transient failures
// (see Transient) are retried transparently with exponential backoff and
// jitter, up to MaxAttempts and within a per-call time budget. The zero
// value means the defaults; set Disabled to turn transparent retries off.
type RetryPolicy struct {
	// Disabled turns off transparent retries (wrong-silo re-routing, an
	// internal correctness mechanism, still happens).
	Disabled bool
	// MaxAttempts is the total number of tries including the first
	// (default 4).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry (default 2ms);
	// it doubles per retry up to MaxBackoff (default 250ms).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Jitter is the fraction of each backoff randomized away to
	// decorrelate retry storms, in [0,1) (default 0.5).
	Jitter float64
	// Budget bounds the total time spent retrying one call when the
	// caller's context has no deadline of its own (default 5s). The
	// first attempt is never cut short by the budget — only retries are.
	Budget time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 2 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 250 * time.Millisecond
	}
	if p.Jitter <= 0 || p.Jitter >= 1 {
		p.Jitter = 0.5
	}
	if p.Budget <= 0 {
		p.Budget = 5 * time.Second
	}
	return p
}

// Config configures a Runtime. The zero value is usable: an in-process
// transport with no latency model, random placement, no persistence, and
// no capacity limits.
type Config struct {
	// Transport moves messages between silos. Nil means a zero-latency
	// in-process transport.
	Transport transport.Transport
	// Placement is the default strategy for kinds without an override.
	// Nil means random placement (Orleans' default).
	Placement placement.Strategy
	// Store enables actor-state persistence and reminders when set.
	Store *kvstore.Store
	// States overrides where activation state loads and flushes go. Nil
	// uses Store's state table directly; a replication coordinator's
	// state store routes them through quorum reads and writes instead.
	// Store (for reminders and the table default) may still be set
	// alongside it.
	States StateStore
	// StateTable names the grain-state table in Store (default "grains").
	StateTable string
	// StateThroughput provisions the state table when it must be created
	// (zero = unlimited).
	StateThroughput kvstore.Throughput
	// Cost simulates per-turn CPU cost on capacity-limited silos.
	Cost CostFunc
	// IdleAfter is how long an activation may sit idle before collection
	// (default 2 minutes).
	IdleAfter time.Duration
	// CollectEvery is the idle-collector period (default 15 seconds).
	CollectEvery time.Duration
	// RemindersEvery is the reminder-poll period; zero disables the
	// reminder service (it also requires Store).
	RemindersEvery time.Duration
	// View overrides the silo set used for placement. Nil means all silos
	// added to this Runtime.
	View ViewProvider
	// Clock defaults to the real clock.
	Clock clock.Clock
	// Metrics receives runtime instrumentation; nil allocates a registry.
	Metrics *metrics.Registry
	// Retry configures transparent retries of transient call failures.
	Retry RetryPolicy
	// BeforeTurn, when set, runs at the start of every actor turn, inside
	// the panic-isolation boundary. It exists for fault injection (a hook
	// that panics exercises the recovery path exactly as an application
	// bug would); nil adds no hot-path overhead.
	BeforeTurn func(id ID, msg any)
	// Tracer enables distributed tracing and runtime introspection. Nil
	// (or a disabled tracer) costs one nil-or-atomic check per message,
	// mirroring the internal/faults contract.
	Tracer *telemetry.Tracer
	// Profiler enables per-activation hot-spot accounting (CPU burn, turn
	// counts, mailbox high-water marks, state sizes) under the same
	// contract: nil or disabled costs one nil-or-atomic check per turn.
	Profiler *telemetry.ActorProfiler
	// Journal enables the cluster flight recorder: HLC stamps on every
	// envelope and cross-silo request, plus structured events (migration
	// phases, slow turns, panics) in a bounded ring. Same contract: nil
	// or disabled costs one nil-or-atomic check per message.
	Journal *journal.Journal
}

// Runtime is an actor-oriented database instance: a set of silos, a grain
// directory, kind registrations, and the shared persistence plumbing.
type Runtime struct {
	cfg       Config
	clk       clock.Clock
	retry     RetryPolicy // cfg.Retry with defaults resolved
	directory *directory.Directory
	metrics   *metrics.Registry
	tracer    *telemetry.Tracer        // nil = tracing off
	profiler  *telemetry.ActorProfiler // nil = profiling off
	journal   *journal.Journal         // nil = flight recorder off
	states    StateStore               // nil = no persistence
	reminders *systemstore.Store

	// services maps reserved transport target kinds (e.g. replication
	// RPCs) to their handlers. Copy-on-write: the hot inbound path does
	// one atomic load and, for actor traffic on a runtime with no
	// services, one nil check.
	services atomic.Pointer[map[string]ServiceHandler]

	mu       sync.RWMutex
	kinds    map[string]*kindConfig
	silos    map[string]*Silo
	siloList []string // sorted names, rebuilt on AddSilo
	shutdown bool

	reminderStop chan struct{}
	reminderDone chan struct{}
}

// New creates a runtime. Add at least one silo and register kinds before
// calling actors.
func New(cfg Config) (*Runtime, error) {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real()
	}
	if cfg.Transport == nil {
		cfg.Transport = transport.NewLocal(nil, cfg.Clock)
	}
	if cfg.Placement == nil {
		cfg.Placement = placement.NewRandom(cfg.Clock.Now().UnixNano())
	}
	if cfg.StateTable == "" {
		cfg.StateTable = "grains"
	}
	if cfg.IdleAfter <= 0 {
		cfg.IdleAfter = 2 * time.Minute
	}
	if cfg.CollectEvery <= 0 {
		cfg.CollectEvery = 15 * time.Second
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	rt := &Runtime{
		cfg:       cfg,
		clk:       cfg.Clock,
		retry:     cfg.Retry.withDefaults(),
		directory: directory.New(),
		metrics:   cfg.Metrics,
		tracer:    cfg.Tracer,
		profiler:  cfg.Profiler,
		journal:   cfg.Journal,
		kinds:     make(map[string]*kindConfig),
		silos:     make(map[string]*Silo),
	}
	if cfg.Store != nil {
		table, err := cfg.Store.EnsureTable(cfg.StateTable, cfg.StateThroughput)
		if err != nil {
			return nil, err
		}
		rt.states = tableStateStore{t: table}
		sys, err := systemstore.New(cfg.Store, cfg.Clock)
		if err != nil {
			return nil, err
		}
		rt.reminders = sys
		if cfg.RemindersEvery > 0 {
			rt.reminderStop = make(chan struct{})
			rt.reminderDone = make(chan struct{})
			go rt.reminderLoop()
		}
	}
	if cfg.States != nil {
		rt.states = cfg.States
	}
	// Live actor hand-off (Runtime.Migrate) is a built-in service: silos
	// answer drain/activate RPCs on the reserved "!migrate" kind.
	if err := rt.RegisterService(MigrateKind, rt.handleMigrate); err != nil {
		return nil, err
	}
	return rt, nil
}

// ServiceHandler serves requests addressed to a reserved (non-actor)
// target kind on behalf of the silo named by the second argument. It
// runs on the transport's inbound path, outside any actor mailbox.
type ServiceHandler func(ctx context.Context, silo string, req transport.Request) (any, error)

// RegisterService binds a handler for a reserved transport target kind,
// dispatched on every hosted silo before actor resolution. Kinds should
// be outside the actor namespace (the replication service uses "!repl").
// Re-registering a kind replaces its handler.
func (rt *Runtime) RegisterService(kind string, h ServiceHandler) error {
	if kind == "" || h == nil {
		return errors.New("core: RegisterService needs a kind and handler")
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	old := rt.services.Load()
	next := make(map[string]ServiceHandler, 1)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	next[kind] = h
	rt.services.Store(&next)
	return nil
}

// service returns the handler for kind, or nil.
func (rt *Runtime) service(kind string) ServiceHandler {
	m := rt.services.Load()
	if m == nil {
		return nil
	}
	return (*m)[kind]
}

// RegisterKind makes a kind callable. It must be called before any actor
// of the kind is addressed; re-registering a kind is an error.
func (rt *Runtime) RegisterKind(kind string, factory Factory, opts ...KindOption) error {
	if kind == "" || factory == nil {
		return errors.New("core: RegisterKind needs a kind name and factory")
	}
	cfg := &kindConfig{kind: kind, factory: factory}
	for _, opt := range opts {
		opt(cfg)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, ok := rt.kinds[kind]; ok {
		return fmt.Errorf("core: kind %q already registered", kind)
	}
	rt.kinds[kind] = cfg
	return nil
}

func (rt *Runtime) kind(name string) (*kindConfig, bool) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	cfg, ok := rt.kinds[name]
	return cfg, ok
}

// AddSilo creates a silo named name with an optional capacity limiter
// (nil = unbounded) and registers it with the transport.
func (rt *Runtime) AddSilo(name string, limiter *capacity.Limiter) (*Silo, error) {
	if name == "" {
		return nil, errors.New("core: empty silo name")
	}
	rt.mu.Lock()
	if rt.shutdown {
		rt.mu.Unlock()
		return nil, ErrShutdown
	}
	if _, ok := rt.silos[name]; ok {
		rt.mu.Unlock()
		return nil, fmt.Errorf("core: silo %q already exists", name)
	}
	s := newSilo(name, rt, limiter)
	rt.silos[name] = s
	rt.siloList = append(rt.siloList, name)
	sort.Strings(rt.siloList)
	rt.mu.Unlock()
	if err := rt.cfg.Transport.Register(name, s.handle); err != nil {
		rt.mu.Lock()
		delete(rt.silos, name)
		rt.rebuildSiloList()
		rt.mu.Unlock()
		return nil, err
	}
	go s.collector(rt.cfg.CollectEvery)
	return s, nil
}

func (rt *Runtime) rebuildSiloList() {
	rt.siloList = rt.siloList[:0]
	for n := range rt.silos {
		rt.siloList = append(rt.siloList, n)
	}
	sort.Strings(rt.siloList)
}

// RemoveSilo takes a silo out of service: it drains its activations
// (persisting state where configured), evicts its directory entries so
// actors can re-activate elsewhere, and removes it from the placement
// view. It models both graceful decommission and — when the silo's state
// was persisted — recovery from silo loss.
func (rt *Runtime) RemoveSilo(ctx context.Context, name string) error {
	rt.mu.Lock()
	s, ok := rt.silos[name]
	if !ok {
		rt.mu.Unlock()
		return fmt.Errorf("core: no silo %q", name)
	}
	delete(rt.silos, name)
	rt.rebuildSiloList()
	rt.mu.Unlock()

	close(s.collectorStop)
	select {
	case <-s.collectorDone:
	case <-ctx.Done():
		return ctx.Err()
	}
	if err := s.drainAll(ctx); err != nil {
		return err
	}
	// Evict any remaining registrations (activations unregister themselves
	// during teardown; this catches ones that failed mid-activation).
	rt.directory.EvictSilo(name)
	if d, ok := rt.cfg.Transport.(transport.Deregisterer); ok {
		d.Deregister(name)
	}
	return nil
}

// CrashSilo abruptly kills a silo, simulating process death: nothing is
// drained or persisted, in-memory activation state is lost, queued and
// in-flight work fails transient, directory entries are evicted so actors
// re-activate elsewhere, and the transport stops delivering to the name.
// Re-adding the same name with AddSilo models a process restart. Compare
// RemoveSilo, which is a graceful decommission.
func (rt *Runtime) CrashSilo(name string) error {
	rt.mu.Lock()
	s, ok := rt.silos[name]
	if !ok {
		rt.mu.Unlock()
		return fmt.Errorf("core: no silo %q", name)
	}
	delete(rt.silos, name)
	rt.rebuildSiloList()
	rt.mu.Unlock()

	// Unplug the transport first so no new messages reach the corpse,
	// then kill the activations and evict their registrations.
	if d, ok := rt.cfg.Transport.(transport.Deregisterer); ok {
		d.Deregister(name)
	}
	close(s.collectorStop)
	s.crashAll()
	rt.directory.EvictSilo(name)
	rt.metrics.Counter("core.silo_crashes").Inc()
	return nil
}

// Silo returns a silo by name (for tests and tooling).
func (rt *Runtime) Silo(name string) (*Silo, bool) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	s, ok := rt.silos[name]
	return s, ok
}

// view returns the active silo set used for placement.
func (rt *Runtime) view() []string {
	if rt.cfg.View != nil {
		return rt.cfg.View.View()
	}
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return append([]string(nil), rt.siloList...)
}

func (rt *Runtime) costOf(id ID, msg any) time.Duration {
	if rt.cfg.Cost == nil {
		return 0
	}
	return rt.cfg.Cost(id, msg)
}

// Metrics exposes the runtime's instrument registry.
func (rt *Runtime) Metrics() *metrics.Registry { return rt.metrics }

// Tracer exposes the runtime's tracer; nil when tracing is not configured.
func (rt *Runtime) Tracer() *telemetry.Tracer { return rt.tracer }

// Profiler exposes the runtime's hot-spot profiler; nil when profiling is
// not configured.
func (rt *Runtime) Profiler() *telemetry.ActorProfiler { return rt.profiler }

// Journal exposes the runtime's flight recorder; nil when not configured.
func (rt *Runtime) Journal() *journal.Journal { return rt.journal }

// Clock exposes the runtime clock.
func (rt *Runtime) Clock() clock.Clock { return rt.clk }

// Directory exposes activation placement information (read-only use).
func (rt *Runtime) Directory() *directory.Directory { return rt.directory }

// Call sends msg to the actor named id and waits for its reply. The call
// activates the actor if needed, according to the kind's placement.
func (rt *Runtime) Call(ctx context.Context, id ID, msg any) (any, error) {
	return rt.call(ctx, "", nil, id, msg, true, telemetry.SpanContext{})
}

// Tell sends msg one-way: it is delivered through the actor's mailbox but
// no reply is awaited.
func (rt *Runtime) Tell(ctx context.Context, id ID, msg any) error {
	_, err := rt.call(ctx, "", nil, id, msg, false, telemetry.SpanContext{})
	return err
}

// call is the shared routing path for external callers (callerSilo == "")
// and actor-to-actor calls. It is self-healing: transient failures (see
// Transient) are retried with exponential backoff and jitter inside a
// time budget, and a routing target that proves unreachable has its
// directory entry evicted so the retry re-places the actor on a live
// silo. Every returned error is classified — Transient(err) answers
// whether the caller may usefully retry.
func (rt *Runtime) call(ctx context.Context, callerSilo string, chain []string, id ID, msg any, needReply bool, trace telemetry.SpanContext) (any, error) {
	if err := id.Validate(); err != nil {
		return nil, err
	}
	rt.mu.RLock()
	dead := rt.shutdown
	rt.mu.RUnlock()
	if dead {
		return nil, ErrShutdown
	}
	cfg, ok := rt.kind(id.Kind)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownKind, id.Kind)
	}
	for _, hop := range chain {
		if hop == id.String() {
			return nil, fmt.Errorf("%w: %v -> %s", ErrCallCycle, chain, id)
		}
	}
	strat := cfg.placement
	if strat == nil {
		strat = rt.cfg.Placement
	}
	method := "call"
	if !needReply {
		method = "tell"
	}

	// External entry points (not actor-to-actor hops) are where traces
	// begin: the tracer's head sampler decides whether this request is
	// followed through the cluster. Actor-to-actor calls arrive with the
	// parent turn's context in trace and never re-sample.
	var root *telemetry.Span
	if callerSilo == "" && !trace.Sampled && rt.tracer.Enabled() {
		trace, root = rt.tracer.StartRoot(method + " " + id.String())
	}
	resp, retries, hops, err := rt.callLoop(ctx, callerSilo, chain, id, msg, strat, method, trace)
	if root != nil {
		root.Retries = int32(retries)
		root.Hops = int32(hops)
		rt.tracer.Finish(root, err)
	}
	return resp, err
}

// callLoop is the self-healing delivery loop behind call, reporting how
// many transparent retries and wrong-silo re-routes the delivery needed
// so root spans can attribute them.
func (rt *Runtime) callLoop(ctx context.Context, callerSilo string, chain []string, id ID, msg any, strat placement.Strategy, method string, trace telemetry.SpanContext) (resp any, retries, hops int, err error) {
	// maxHops bounds the wrong-silo re-route loop: losing the activation
	// race means the directory already names the winner, so re-routing is
	// immediate (no backoff) but must not spin forever under pathological
	// churn.
	const maxHops = 8
	pol := rt.retry
	attempts := pol.MaxAttempts
	if pol.Disabled {
		attempts = 1
	}
	backoff := pol.BaseBackoff
	// The retry deadline is armed lazily on the first failure, so the
	// happy path allocates no timer and pays nothing for the budget.
	var retryDeadline time.Time
	var lastErr error
	redirect := ""
	for attempt := 1; ; {
		resp, err := rt.routeOnce(ctx, callerSilo, chain, id, msg, strat, method, trace, redirect)
		redirect = ""
		if err == nil {
			return resp, retries, hops, nil
		}
		lastErr = err
		if IsWrongSilo(err) {
			hops++
			if hops >= maxHops {
				return nil, retries, hops, fmt.Errorf("core: %s unroutable after %d hops: %w", id, hops, lastErr)
			}
			// Route the next hop straight at the named winner: after a
			// migration the local directory may know nothing about the
			// actor's new home, and deterministic placement would keep
			// re-addressing the silo that just refused.
			redirect = redirectTarget(err)
			continue
		}
		if !Transient(err) {
			return nil, retries, hops, err
		}
		attempt++
		if attempt > attempts {
			break
		}
		if ctx.Err() != nil {
			// The caller's own deadline or cancellation fired; no retry
			// can help within this context.
			break
		}
		if retryDeadline.IsZero() {
			retryDeadline = rt.clk.Now().Add(pol.Budget)
		} else if rt.clk.Now().After(retryDeadline) {
			break
		}
		retries++
		rt.metrics.Counter("core.call_retries").Inc()
		// Equal jitter: sleep in [d*(1-Jitter), d] to decorrelate storms.
		d := backoff - time.Duration(pol.Jitter*float64(backoff)*rand.Float64())
		t := rt.clk.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, retries, hops, fmt.Errorf("core: %s retry interrupted: %v: %w", id, ctx.Err(), lastErr)
		case <-t.C():
		}
		backoff *= 2
		if backoff > pol.MaxBackoff {
			backoff = pol.MaxBackoff
		}
	}
	if pol.Disabled {
		return nil, retries, hops, lastErr
	}
	return nil, retries, hops, fmt.Errorf("core: %s failed after %d attempts: %w", id, attempts, lastErr)
}

// routeOnce resolves id to a silo (directory hit or fresh placement) and
// performs one transport delivery. When a directory-resolved target turns
// out to be unreachable, the stale registration is evicted so the next
// attempt re-places the actor on a live silo — the heart of routing
// around a crashed silo.
func (rt *Runtime) routeOnce(ctx context.Context, callerSilo string, chain []string, id ID, msg any, strat placement.Strategy, method string, trace telemetry.SpanContext, redirect string) (any, error) {
	var target string
	var reg directory.Registration
	fromDirectory := false
	if redirect != "" {
		// The previous hop named the actor's current home; trust it over
		// the directory (which may hold the stale pre-migration route).
		target = redirect
	} else if r, ok := rt.directory.Lookup(id.String()); ok {
		target, reg, fromDirectory = r.Silo, r, true
	} else {
		view := rt.view()
		if len(view) == 0 {
			return nil, ErrNoSilos
		}
		var err error
		target, err = strat.Place(id.String(), callerSilo, view)
		if err != nil {
			return nil, err
		}
	}
	req := transport.Request{
		TargetKind: id.Kind,
		TargetKey:  id.Key,
		Method:     method,
		Payload:    msg,
		Sender:     callerSilo,
		Chain:      chain,
		Trace:      trace,
	}
	// No HLC stamp here: in-process deliveries share this runtime's
	// clock already, and the TCP transport stamps frames that actually
	// leave the process (TCPOptions.StampHLC) — so the hot local path
	// pays no clock work even with the recorder on.
	// One-way sends also travel as transport calls: the reply just
	// acknowledges the enqueue, not the turn. This keeps Tell reliable
	// when the target silo loses an activation race and the message
	// must be re-routed to the winner.
	resp, err := rt.cfg.Transport.Call(ctx, target, req)
	if err != nil && fromDirectory && transport.IsUnreachable(err) {
		if rt.directory.Unregister(reg) {
			rt.metrics.Counter("core.stale_routes_evicted").Inc()
		}
	}
	return resp, err
}

// reminderLoop polls the reminder table and fires due reminders by calling
// their target actors, re-activating them if needed.
func (rt *Runtime) reminderLoop() {
	defer close(rt.reminderDone)
	t := rt.clk.NewTicker(rt.cfg.RemindersEvery)
	defer t.Stop()
	for {
		select {
		case <-rt.reminderStop:
			return
		case <-t.C():
			rt.fireDueReminders()
		}
	}
}

func (rt *Runtime) fireDueReminders() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	now := rt.clk.Now()
	due, err := rt.reminders.Due(ctx, now)
	if err != nil {
		rt.metrics.Counter("core.reminder_poll_errors").Inc()
		return
	}
	for _, r := range due {
		id, err := ParseID(r.Target)
		if err != nil {
			rt.metrics.Counter("core.reminder_bad_target").Inc()
			_ = rt.reminders.UnregisterReminder(ctx, r.Target, r.Name)
			continue
		}
		if _, err := rt.Call(ctx, id, ReminderTick{Name: r.Name, Due: r.NextDue}); err != nil {
			rt.metrics.Counter("core.reminder_delivery_errors").Inc()
			continue // leave NextDue unchanged; retried next poll
		}
		if _, err := rt.reminders.Advance(ctx, r, now); err != nil {
			rt.metrics.Counter("core.reminder_advance_errors").Inc()
		}
		rt.metrics.Counter("core.reminders_fired").Inc()
	}
}

// Shutdown deactivates every activation on every silo (persisting state
// where configured), stops background loops, and closes the transport.
func (rt *Runtime) Shutdown(ctx context.Context) error {
	rt.mu.Lock()
	if rt.shutdown {
		rt.mu.Unlock()
		return nil
	}
	rt.shutdown = true
	silos := make([]*Silo, 0, len(rt.silos))
	for _, s := range rt.silos {
		silos = append(silos, s)
	}
	rt.mu.Unlock()

	if rt.reminderStop != nil {
		close(rt.reminderStop)
		<-rt.reminderDone
	}
	var firstErr error
	for _, s := range silos {
		close(s.collectorStop)
	}
	for _, s := range silos {
		select {
		case <-s.collectorDone:
		case <-ctx.Done():
			return ctx.Err()
		}
		if err := s.drainAll(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := rt.cfg.Transport.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
