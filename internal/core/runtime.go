package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"aodb/internal/capacity"
	"aodb/internal/clock"
	"aodb/internal/directory"
	"aodb/internal/kvstore"
	"aodb/internal/metrics"
	"aodb/internal/placement"
	"aodb/internal/systemstore"
	"aodb/internal/transport"
)

// CostFunc assigns a simulated CPU cost to one actor turn, used with
// capacity-limited silos to reproduce bounded-server behaviour. A nil
// CostFunc means all turns are free (still bounded in concurrency if the
// silo has a limiter).
type CostFunc func(id ID, msg any) time.Duration

// ViewProvider supplies the current set of active silos for placement.
type ViewProvider interface {
	View() []string
}

// Config configures a Runtime. The zero value is usable: an in-process
// transport with no latency model, random placement, no persistence, and
// no capacity limits.
type Config struct {
	// Transport moves messages between silos. Nil means a zero-latency
	// in-process transport.
	Transport transport.Transport
	// Placement is the default strategy for kinds without an override.
	// Nil means random placement (Orleans' default).
	Placement placement.Strategy
	// Store enables actor-state persistence and reminders when set.
	Store *kvstore.Store
	// StateTable names the grain-state table in Store (default "grains").
	StateTable string
	// StateThroughput provisions the state table when it must be created
	// (zero = unlimited).
	StateThroughput kvstore.Throughput
	// Cost simulates per-turn CPU cost on capacity-limited silos.
	Cost CostFunc
	// IdleAfter is how long an activation may sit idle before collection
	// (default 2 minutes).
	IdleAfter time.Duration
	// CollectEvery is the idle-collector period (default 15 seconds).
	CollectEvery time.Duration
	// RemindersEvery is the reminder-poll period; zero disables the
	// reminder service (it also requires Store).
	RemindersEvery time.Duration
	// View overrides the silo set used for placement. Nil means all silos
	// added to this Runtime.
	View ViewProvider
	// Clock defaults to the real clock.
	Clock clock.Clock
	// Metrics receives runtime instrumentation; nil allocates a registry.
	Metrics *metrics.Registry
}

// Runtime is an actor-oriented database instance: a set of silos, a grain
// directory, kind registrations, and the shared persistence plumbing.
type Runtime struct {
	cfg        Config
	clk        clock.Clock
	directory  *directory.Directory
	metrics    *metrics.Registry
	stateTable *kvstore.Table
	reminders  *systemstore.Store

	mu       sync.RWMutex
	kinds    map[string]*kindConfig
	silos    map[string]*Silo
	siloList []string // sorted names, rebuilt on AddSilo
	shutdown bool

	reminderStop chan struct{}
	reminderDone chan struct{}
}

// New creates a runtime. Add at least one silo and register kinds before
// calling actors.
func New(cfg Config) (*Runtime, error) {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real()
	}
	if cfg.Transport == nil {
		cfg.Transport = transport.NewLocal(nil, cfg.Clock)
	}
	if cfg.Placement == nil {
		cfg.Placement = placement.NewRandom(cfg.Clock.Now().UnixNano())
	}
	if cfg.StateTable == "" {
		cfg.StateTable = "grains"
	}
	if cfg.IdleAfter <= 0 {
		cfg.IdleAfter = 2 * time.Minute
	}
	if cfg.CollectEvery <= 0 {
		cfg.CollectEvery = 15 * time.Second
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	rt := &Runtime{
		cfg:       cfg,
		clk:       cfg.Clock,
		directory: directory.New(),
		metrics:   cfg.Metrics,
		kinds:     make(map[string]*kindConfig),
		silos:     make(map[string]*Silo),
	}
	if cfg.Store != nil {
		table, err := cfg.Store.EnsureTable(cfg.StateTable, cfg.StateThroughput)
		if err != nil {
			return nil, err
		}
		rt.stateTable = table
		sys, err := systemstore.New(cfg.Store, cfg.Clock)
		if err != nil {
			return nil, err
		}
		rt.reminders = sys
		if cfg.RemindersEvery > 0 {
			rt.reminderStop = make(chan struct{})
			rt.reminderDone = make(chan struct{})
			go rt.reminderLoop()
		}
	}
	return rt, nil
}

// RegisterKind makes a kind callable. It must be called before any actor
// of the kind is addressed; re-registering a kind is an error.
func (rt *Runtime) RegisterKind(kind string, factory Factory, opts ...KindOption) error {
	if kind == "" || factory == nil {
		return errors.New("core: RegisterKind needs a kind name and factory")
	}
	cfg := &kindConfig{kind: kind, factory: factory}
	for _, opt := range opts {
		opt(cfg)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, ok := rt.kinds[kind]; ok {
		return fmt.Errorf("core: kind %q already registered", kind)
	}
	rt.kinds[kind] = cfg
	return nil
}

func (rt *Runtime) kind(name string) (*kindConfig, bool) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	cfg, ok := rt.kinds[name]
	return cfg, ok
}

// AddSilo creates a silo named name with an optional capacity limiter
// (nil = unbounded) and registers it with the transport.
func (rt *Runtime) AddSilo(name string, limiter *capacity.Limiter) (*Silo, error) {
	if name == "" {
		return nil, errors.New("core: empty silo name")
	}
	rt.mu.Lock()
	if rt.shutdown {
		rt.mu.Unlock()
		return nil, ErrShutdown
	}
	if _, ok := rt.silos[name]; ok {
		rt.mu.Unlock()
		return nil, fmt.Errorf("core: silo %q already exists", name)
	}
	s := newSilo(name, rt, limiter)
	rt.silos[name] = s
	rt.siloList = append(rt.siloList, name)
	sort.Strings(rt.siloList)
	rt.mu.Unlock()
	if err := rt.cfg.Transport.Register(name, s.handle); err != nil {
		rt.mu.Lock()
		delete(rt.silos, name)
		rt.rebuildSiloList()
		rt.mu.Unlock()
		return nil, err
	}
	go s.collector(rt.cfg.CollectEvery)
	return s, nil
}

func (rt *Runtime) rebuildSiloList() {
	rt.siloList = rt.siloList[:0]
	for n := range rt.silos {
		rt.siloList = append(rt.siloList, n)
	}
	sort.Strings(rt.siloList)
}

// RemoveSilo takes a silo out of service: it drains its activations
// (persisting state where configured), evicts its directory entries so
// actors can re-activate elsewhere, and removes it from the placement
// view. It models both graceful decommission and — when the silo's state
// was persisted — recovery from silo loss.
func (rt *Runtime) RemoveSilo(ctx context.Context, name string) error {
	rt.mu.Lock()
	s, ok := rt.silos[name]
	if !ok {
		rt.mu.Unlock()
		return fmt.Errorf("core: no silo %q", name)
	}
	delete(rt.silos, name)
	rt.rebuildSiloList()
	rt.mu.Unlock()

	close(s.collectorStop)
	select {
	case <-s.collectorDone:
	case <-ctx.Done():
		return ctx.Err()
	}
	if err := s.drainAll(ctx); err != nil {
		return err
	}
	// Evict any remaining registrations (activations unregister themselves
	// during teardown; this catches ones that failed mid-activation).
	rt.directory.EvictSilo(name)
	if lt, ok := rt.cfg.Transport.(*transport.Local); ok {
		lt.Deregister(name)
	}
	return nil
}

// Silo returns a silo by name (for tests and tooling).
func (rt *Runtime) Silo(name string) (*Silo, bool) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	s, ok := rt.silos[name]
	return s, ok
}

// view returns the active silo set used for placement.
func (rt *Runtime) view() []string {
	if rt.cfg.View != nil {
		return rt.cfg.View.View()
	}
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return append([]string(nil), rt.siloList...)
}

func (rt *Runtime) costOf(id ID, msg any) time.Duration {
	if rt.cfg.Cost == nil {
		return 0
	}
	return rt.cfg.Cost(id, msg)
}

// Metrics exposes the runtime's instrument registry.
func (rt *Runtime) Metrics() *metrics.Registry { return rt.metrics }

// Clock exposes the runtime clock.
func (rt *Runtime) Clock() clock.Clock { return rt.clk }

// Directory exposes activation placement information (read-only use).
func (rt *Runtime) Directory() *directory.Directory { return rt.directory }

// Call sends msg to the actor named id and waits for its reply. The call
// activates the actor if needed, according to the kind's placement.
func (rt *Runtime) Call(ctx context.Context, id ID, msg any) (any, error) {
	return rt.call(ctx, "", nil, id, msg, true)
}

// Tell sends msg one-way: it is delivered through the actor's mailbox but
// no reply is awaited.
func (rt *Runtime) Tell(ctx context.Context, id ID, msg any) error {
	_, err := rt.call(ctx, "", nil, id, msg, false)
	return err
}

// call is the shared routing path for external callers (callerSilo == "")
// and actor-to-actor calls.
func (rt *Runtime) call(ctx context.Context, callerSilo string, chain []string, id ID, msg any, needReply bool) (any, error) {
	if err := id.Validate(); err != nil {
		return nil, err
	}
	rt.mu.RLock()
	dead := rt.shutdown
	rt.mu.RUnlock()
	if dead {
		return nil, ErrShutdown
	}
	cfg, ok := rt.kind(id.Kind)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownKind, id.Kind)
	}
	for _, hop := range chain {
		if hop == id.String() {
			return nil, fmt.Errorf("%w: %v -> %s", ErrCallCycle, chain, id)
		}
	}
	strat := cfg.placement
	if strat == nil {
		strat = rt.cfg.Placement
	}
	method := "call"
	if !needReply {
		method = "tell"
	}
	const maxHops = 8
	var lastErr error
	for attempt := 0; attempt < maxHops; attempt++ {
		target := ""
		if reg, ok := rt.directory.Lookup(id.String()); ok {
			target = reg.Silo
		} else {
			view := rt.view()
			if len(view) == 0 {
				return nil, ErrNoSilos
			}
			var err error
			target, err = strat.Place(id.String(), callerSilo, view)
			if err != nil {
				return nil, err
			}
		}
		req := transport.Request{
			TargetKind: id.Kind,
			TargetKey:  id.Key,
			Method:     method,
			Payload:    msg,
			Sender:     callerSilo,
			Chain:      chain,
		}
		// One-way sends also travel as transport calls: the reply just
		// acknowledges the enqueue, not the turn. This keeps Tell reliable
		// when the target silo loses an activation race and the message
		// must be re-routed to the winner.
		resp, err := rt.cfg.Transport.Call(ctx, target, req)
		var wrong *wrongSiloError
		if errors.As(err, &wrong) {
			// The target silo lost (or never entered) the activation race;
			// the directory now points at the winner. Retry.
			lastErr = err
			continue
		}
		return resp, err
	}
	return nil, fmt.Errorf("core: %s unroutable after %d attempts: %w", id, maxHops, lastErr)
}

// reminderLoop polls the reminder table and fires due reminders by calling
// their target actors, re-activating them if needed.
func (rt *Runtime) reminderLoop() {
	defer close(rt.reminderDone)
	t := rt.clk.NewTicker(rt.cfg.RemindersEvery)
	defer t.Stop()
	for {
		select {
		case <-rt.reminderStop:
			return
		case <-t.C():
			rt.fireDueReminders()
		}
	}
}

func (rt *Runtime) fireDueReminders() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	now := rt.clk.Now()
	due, err := rt.reminders.Due(ctx, now)
	if err != nil {
		rt.metrics.Counter("core.reminder_poll_errors").Inc()
		return
	}
	for _, r := range due {
		id, err := ParseID(r.Target)
		if err != nil {
			rt.metrics.Counter("core.reminder_bad_target").Inc()
			_ = rt.reminders.UnregisterReminder(ctx, r.Target, r.Name)
			continue
		}
		if _, err := rt.Call(ctx, id, ReminderTick{Name: r.Name, Due: r.NextDue}); err != nil {
			rt.metrics.Counter("core.reminder_delivery_errors").Inc()
			continue // leave NextDue unchanged; retried next poll
		}
		if _, err := rt.reminders.Advance(ctx, r, now); err != nil {
			rt.metrics.Counter("core.reminder_advance_errors").Inc()
		}
		rt.metrics.Counter("core.reminders_fired").Inc()
	}
}

// Shutdown deactivates every activation on every silo (persisting state
// where configured), stops background loops, and closes the transport.
func (rt *Runtime) Shutdown(ctx context.Context) error {
	rt.mu.Lock()
	if rt.shutdown {
		rt.mu.Unlock()
		return nil
	}
	rt.shutdown = true
	silos := make([]*Silo, 0, len(rt.silos))
	for _, s := range rt.silos {
		silos = append(silos, s)
	}
	rt.mu.Unlock()

	if rt.reminderStop != nil {
		close(rt.reminderStop)
		<-rt.reminderDone
	}
	var firstErr error
	for _, s := range silos {
		close(s.collectorStop)
	}
	for _, s := range silos {
		select {
		case <-s.collectorDone:
		case <-ctx.Done():
			return ctx.Err()
		}
		if err := s.drainAll(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := rt.cfg.Transport.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
