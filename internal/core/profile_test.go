package core

import (
	"context"
	"testing"
	"time"

	"aodb/internal/capacity"
	"aodb/internal/kvstore"
	"aodb/internal/telemetry"
)

// TestProfilerAccountsTurns verifies the turn-path wiring: every turn is
// counted, CPU burn is attributed to the actor that spent it, and the
// hosting silo rides along as the entry label.
func TestProfilerAccountsTurns(t *testing.T) {
	prof := telemetry.NewProfiler(telemetry.ProfilerConfig{K: 8})
	rt := newTestRuntime(t, Config{
		Profiler: prof,
		Cost: func(id ID, msg any) time.Duration {
			if id.Key == "hot" {
				return 2 * time.Millisecond
			}
			return 0
		},
	})
	registerCounter(t, rt)
	lim := capacity.NewLimiter(capacity.Profile{Workers: 1, Speed: 1}, rt.Clock())
	if _, err := rt.AddSilo("silo-1", lim); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := rt.Call(ctx, ID{"Counter", "hot"}, addMsg{1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rt.Call(ctx, ID{"Counter", "cold"}, addMsg{1}); err != nil {
		t.Fatal(err)
	}

	hot := prof.HotActors()
	if len(hot) != 2 {
		t.Fatalf("hot actors = %+v, want 2 entries", hot)
	}
	top := hot[0]
	if top.Key != "Counter/hot" {
		t.Fatalf("top actor = %+v, want Counter/hot", top)
	}
	if top.Turns != 5 {
		t.Fatalf("top turns = %d, want 5", top.Turns)
	}
	if top.Count < int64(5*2*time.Millisecond) {
		t.Fatalf("top cpu = %dns, want >= 10ms of simulated burn", top.Count)
	}
	if top.Label != "silo-1" {
		t.Fatalf("top label = %q, want silo-1", top.Label)
	}
	turns, cpu := prof.Totals()
	if turns != 6 || cpu <= 0 {
		t.Fatalf("totals = %d turns %d cpu", turns, cpu)
	}
	kinds := prof.KindProfiles()
	if len(kinds) != 1 || kinds[0].Kind != "Counter" || kinds[0].Turns != 6 {
		t.Fatalf("kind profiles = %+v", kinds)
	}
}

// TestProfilerWithoutLimiterUsesWallTime: on an unbounded silo there is no
// simulated burn, so attribution falls back to real handler time.
func TestProfilerWithoutLimiterUsesWallTime(t *testing.T) {
	prof := telemetry.NewProfiler(telemetry.ProfilerConfig{K: 8})
	rt := newTestRuntime(t, Config{Profiler: prof})
	registerCounter(t, rt)
	rt.AddSilo("silo-1", nil)
	ctx := context.Background()
	if _, err := rt.Call(ctx, ID{"Counter", "slow"}, slowMsg{D: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	hot := prof.HotActors()
	if len(hot) != 1 || hot[0].Key != "Counter/slow" {
		t.Fatalf("hot = %+v", hot)
	}
	if hot[0].Count < int64(4*time.Millisecond) {
		t.Fatalf("cpu = %dns, want >= ~5ms of wall time", hot[0].Count)
	}
}

// TestProfilerAccountsStateSize verifies the persistence-path wiring: the
// serialized state size reaches both the per-actor entry and the per-kind
// max, on write and on a fresh activation's load.
func TestProfilerAccountsStateSize(t *testing.T) {
	prof := telemetry.NewProfiler(telemetry.ProfilerConfig{K: 8})
	store, err := kvstore.Open(kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt := newTestRuntime(t, Config{
		Profiler:  prof,
		Store:     store,
		IdleAfter: 10 * time.Millisecond,
	})
	registerCounter(t, rt, WithPersistence(PersistOnDeactivate))
	rt.AddSilo("silo-1", nil)
	ctx := context.Background()
	id := ID{"Counter", "persisted"}
	if _, err := rt.Call(ctx, id, addMsg{41}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Call(ctx, id, saveMsg{}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range prof.HotActors() {
		if e.Key == "Counter/persisted" && e.Bytes > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("state size not attributed: %+v", prof.HotActors())
	}
	kinds := prof.KindProfiles()
	if len(kinds) != 1 || kinds[0].MaxStateBytes <= 0 {
		t.Fatalf("kind state bytes missing: %+v", kinds)
	}
}

// TestProfilerDisabledCostsNothingVisible: with no profiler configured the
// turn path must behave identically (this is the contract the hot-path
// benchmark quantifies; here we just assert no accounting appears and
// nothing panics on the nil receiver).
func TestProfilerNilIsInert(t *testing.T) {
	rt := newTestRuntime(t, Config{})
	registerCounter(t, rt)
	rt.AddSilo("silo-1", nil)
	if _, err := rt.Call(context.Background(), ID{"Counter", "a"}, addMsg{1}); err != nil {
		t.Fatal(err)
	}
	if rt.Profiler() != nil {
		t.Fatal("expected nil profiler")
	}
	if rt.Profiler().HotActors() != nil {
		t.Fatal("nil profiler returned data")
	}
}

// TestProfilerDisabledMidRun: toggling the profiler off stops accounting
// without losing what was already gathered.
func TestProfilerToggle(t *testing.T) {
	prof := telemetry.NewProfiler(telemetry.ProfilerConfig{K: 8})
	rt := newTestRuntime(t, Config{Profiler: prof})
	registerCounter(t, rt)
	rt.AddSilo("silo-1", nil)
	ctx := context.Background()
	rt.Call(ctx, ID{"Counter", "a"}, addMsg{1})
	prof.SetEnabled(false)
	rt.Call(ctx, ID{"Counter", "a"}, addMsg{1})
	turns, _ := prof.Totals()
	if turns != 1 {
		t.Fatalf("turns = %d, want 1 (second turn observed while disabled)", turns)
	}
	prof.SetEnabled(true)
	rt.Call(ctx, ID{"Counter", "a"}, addMsg{1})
	turns, _ = prof.Totals()
	if turns != 2 {
		t.Fatalf("turns = %d, want 2", turns)
	}
}
