package core

import (
	"context"
	"errors"
	"fmt"

	"aodb/internal/transport"
)

// Errors surfaced by the runtime.
var (
	// ErrUnknownKind reports a Call to a kind no silo has registered.
	ErrUnknownKind = errors.New("core: unknown actor kind")
	// ErrShutdown reports a Call on a runtime that has been shut down.
	ErrShutdown = errors.New("core: runtime shut down")
	// ErrCallCycle reports a synchronous call chain that revisits an
	// actor already waiting in the chain, which would deadlock its
	// single-threaded mailbox.
	ErrCallCycle = errors.New("core: call cycle detected")
	// ErrNoSilos reports a runtime with no silos added yet.
	ErrNoSilos = errors.New("core: no silos in runtime")

	// ErrTransient marks errors that are safe to retry: the failure is a
	// property of the moment (an activation race, a dead silo being
	// routed around, a dropped message), not of the request. Errors carry
	// the mark via errors.Is; use Transient to classify.
	ErrTransient = errors.New("core: transient failure")
	// ErrActorPanic marks a panic recovered inside an actor handler. The
	// panicking activation is poisoned and deactivated; the error is
	// permanent for the call that triggered it, but a fresh Call to the
	// same actor ID re-activates it. Match with errors.Is(err,
	// ErrActorPanic) or errors.As with *PanicError.
	ErrActorPanic = errors.New("core: actor panicked")
	// ErrStaleActivation reports a state write fenced off by the version
	// check: another activation of the same actor has written since this
	// one loaded. The stale activation deactivates itself; retrying
	// reaches the fresh one, so the error is transient.
	ErrStaleActivation = errors.New("core: stale activation fenced")
)

// PanicError is the recovered panic from an actor handler, carrying the
// panic value and the goroutine stack at the point of recovery.
type PanicError struct {
	Actor string
	Value any
	Stack string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("core: actor %s panicked: %v", e.Actor, e.Value)
}

// Is marks PanicError as ErrActorPanic for errors.Is.
func (e *PanicError) Is(target error) bool { return target == ErrActorPanic }

// wrongSiloError is returned by a silo that lost the activation race for
// an actor; the runtime re-routes the call to the winner.
type wrongSiloError struct {
	Actor  string
	Winner string
}

func (e *wrongSiloError) Error() string {
	return fmt.Sprintf("core: %s is activated on %s", e.Actor, e.Winner)
}

// Is marks the wrong-silo race as transient for errors.Is.
func (e *wrongSiloError) Is(target error) bool { return target == ErrTransient }

// RedirectTarget names the silo holding the activation, matching
// transport.RedirectError so routing treats local and remote wrong-silo
// answers identically.
func (e *wrongSiloError) RedirectTarget() string { return e.Winner }

// IsWrongSilo reports whether err is the wrong-silo activation race: the
// addressed silo lost (or never entered) the race — or the actor was
// migrated away — and the answer names the winner. It matches both the
// in-process error and its wire form (transport.RedirectError). Callers
// normally never see it — the runtime re-routes internally — but it can
// surface in the failure chain after retries are exhausted.
func IsWrongSilo(err error) bool {
	return redirectTarget(err) != ""
}

// redirectTarget extracts the re-route target from a wrong-silo answer
// (local or wire form), or "".
func redirectTarget(err error) string {
	var r interface{ RedirectTarget() string }
	if errors.As(err, &r) {
		return r.RedirectTarget()
	}
	return ""
}

// Transient reports whether err is safe to retry. The taxonomy:
//
//   - transient: the wrong-silo activation race, transport-level
//     unreachability (dead connection, deregistered/crashed silo, open
//     circuit breaker), a cluster with no silos (mid-failover), a fenced
//     stale activation, and deadline expiry (the work may succeed with a
//     fresh budget);
//   - permanent: everything else — unknown kinds, invalid IDs, call
//     cycles, runtime shutdown, actor panics, and any error an actor's
//     own handler returned (the turn ran; retrying would re-execute it).
//
// Errors from layers core does not import can self-classify by
// implementing `TransientError() bool` anywhere in their chain — the
// replication layer's quorum failure does (replicas come back; the
// caller saw no ack, so retrying is safe).
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrTransient) {
		return true
	}
	var t interface{ TransientError() bool }
	if errors.As(err, &t) {
		return t.TransientError()
	}
	if transport.IsUnreachable(err) {
		return true
	}
	if errors.Is(err, ErrNoSilos) || errors.Is(err, ErrStaleActivation) {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded)
}
