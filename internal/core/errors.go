package core

import (
	"errors"
	"fmt"
)

// Errors surfaced by the runtime.
var (
	// ErrUnknownKind reports a Call to a kind no silo has registered.
	ErrUnknownKind = errors.New("core: unknown actor kind")
	// ErrShutdown reports a Call on a runtime that has been shut down.
	ErrShutdown = errors.New("core: runtime shut down")
	// ErrCallCycle reports a synchronous call chain that revisits an
	// actor already waiting in the chain, which would deadlock its
	// single-threaded mailbox.
	ErrCallCycle = errors.New("core: call cycle detected")
	// ErrNoSilos reports a runtime with no silos added yet.
	ErrNoSilos = errors.New("core: no silos in runtime")
)

// wrongSiloError is returned by a silo that lost the activation race for
// an actor; the runtime re-routes the call to the winner.
type wrongSiloError struct {
	Actor  string
	Winner string
}

func (e *wrongSiloError) Error() string {
	return fmt.Sprintf("core: %s is activated on %s", e.Actor, e.Winner)
}
