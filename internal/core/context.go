package core

import (
	"context"
	"errors"
	"time"

	"aodb/internal/clock"
	"aodb/internal/kvstore"
	"aodb/internal/systemstore"
	"aodb/internal/telemetry"
)

// Context is passed to every actor turn. It carries the caller's
// context.Context (cancellation, deadlines) plus the actor-facing runtime
// surface: identity, messaging, persistence, timers, and reminders.
//
// A Context is only valid for the duration of the turn that received it;
// actors must not retain it across turns.
type Context struct {
	context.Context
	rt    *Runtime
	silo  *Silo
	self  ID
	act   *activation
	chain []string
}

// Self returns the identity of the actor processing this turn.
func (c *Context) Self() ID { return c.self }

// SiloName returns the name of the silo hosting this activation.
func (c *Context) SiloName() string { return c.silo.name }

// Clock returns the runtime clock. Actors use it instead of time.Now so
// simulations and tests control time.
func (c *Context) Clock() clock.Clock { return c.rt.clk }

// Call invokes another actor and waits for its reply. The runtime tracks
// the synchronous call chain and fails fast with ErrCallCycle on re-entry,
// since a cycle would deadlock the single-threaded mailboxes involved.
func (c *Context) Call(id ID, msg any) (any, error) {
	trace, sp, start := c.childTrace()
	v, err := c.rt.call(c.Context, c.silo.name, append(c.chainCopy(), c.self.String()), id, msg, true, trace)
	if sp != nil {
		sp.AddNested(c.rt.clk.Since(start))
	}
	return v, err
}

// Tell sends a one-way message to another actor.
func (c *Context) Tell(id ID, msg any) error {
	trace, sp, start := c.childTrace()
	_, err := c.rt.call(c.Context, c.silo.name, append(c.chainCopy(), c.self.String()), id, msg, false, trace)
	if sp != nil {
		sp.AddNested(c.rt.clk.Since(start))
	}
	return err
}

// childTrace returns the trace context outgoing calls from this turn
// should carry, plus the current span and start time for nested-time
// accounting. All zero when the turn is unsampled.
func (c *Context) childTrace() (telemetry.SpanContext, *telemetry.Span, time.Time) {
	sp := c.act.cur
	if sp == nil {
		return telemetry.SpanContext{}, nil, time.Time{}
	}
	return sp.ChildContext(), sp, c.rt.clk.Now()
}

func (c *Context) chainCopy() []string {
	out := make([]string, len(c.chain), len(c.chain)+1)
	copy(out, c.chain)
	return out
}

// WriteState persists the actor's state now — the analog of Orleans'
// WriteStateAsync. The write is charged against the state table's
// provisioned throughput, so hot-path writes can block; see the paper's
// durability discussion in Section 5.
func (c *Context) WriteState() error {
	return c.act.writeState(c.Context)
}

// Table returns an auxiliary table in the runtime's store, creating it
// (unlimited throughput) if needed. Actors use it for data that outgrows
// their own state — e.g. sensor channels archiving closed window segments
// so long-period historical queries stay answerable after the in-memory
// window moves on. Returns an error when the runtime has no store.
func (c *Context) Table(name string) (*kvstore.Table, error) {
	if c.rt.cfg.Store == nil {
		return nil, errors.New("core: runtime has no store configured")
	}
	return c.rt.cfg.Store.EnsureTable(name, kvstore.Throughput{})
}

// RegisterTimer delivers msg to this actor every period while it stays
// activated. Timers are volatile: they die with the activation and do not
// keep it alive.
func (c *Context) RegisterTimer(name string, period time.Duration, msg any) error {
	return c.act.registerTimer(name, period, msg)
}

// CancelTimer stops a named timer.
func (c *Context) CancelTimer(name string) {
	c.act.cancelTimer(name)
}

// RegisterReminder persists a reminder that fires a ReminderTick at this
// actor every period, re-activating it if it was collected. Requires a
// Store on the runtime.
func (c *Context) RegisterReminder(name string, period time.Duration) error {
	if c.rt.reminders == nil {
		return errors.New("core: reminders need a Store on the runtime")
	}
	return c.rt.reminders.RegisterReminder(c.Context, systemstore.Reminder{
		Target: c.self.String(),
		Name:   name,
		Period: period,
	})
}

// UnregisterReminder removes a persistent reminder.
func (c *Context) UnregisterReminder(name string) error {
	if c.rt.reminders == nil {
		return errors.New("core: reminders need a Store on the runtime")
	}
	return c.rt.reminders.UnregisterReminder(c.Context, c.self.String(), name)
}

// DeactivateOnIdle requests prompt collection of this activation: it is
// torn down as soon as its mailbox drains, rather than waiting for the
// idle collector.
func (c *Context) DeactivateOnIdle() {
	// Closing when empty now may lose the race with queued messages; the
	// collector semantics are fine here because the mailbox close is
	// attempted after the current turn by a goroutine watching emptiness.
	go func() {
		for !c.act.box.closeIfEmpty() {
			t := c.rt.clk.NewTimer(time.Millisecond)
			<-t.C()
		}
	}()
}
