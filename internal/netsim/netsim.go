// Package netsim models network cost between simulated hosts.
//
// The paper's evaluation runs silos on separate EC2 instances inside one
// AWS region, so cross-silo actor calls pay a LAN round trip while calls
// between co-located actors are free. The in-process transport consults a
// Model to decide how long to delay each delivery, which is what makes the
// prefer-local vs random placement ablation measurable on one machine.
package netsim

import (
	"math/rand"
	"sync"
	"time"
)

// Profile describes one link class.
type Profile struct {
	// Base is the fixed one-way latency per message.
	Base time.Duration
	// PerKB adds serialization/bandwidth cost per KiB of payload.
	PerKB time.Duration
	// JitterFrac adds uniform jitter in [0, JitterFrac] of Base.
	JitterFrac float64
}

// Common link profiles.
var (
	// Loopback models two actors on the same silo: no network at all.
	Loopback = Profile{}
	// SameAZ models EC2 instances in one availability zone, the paper's
	// deployment: ~100µs one-way plus serialization cost.
	SameAZ = Profile{Base: 100 * time.Microsecond, PerKB: 2 * time.Microsecond, JitterFrac: 0.2}
	// CrossAZ models instances across availability zones.
	CrossAZ = Profile{Base: 600 * time.Microsecond, PerKB: 2 * time.Microsecond, JitterFrac: 0.2}
)

// Model maps (from, to) host pairs to a link profile. The zero Model treats
// every link as loopback.
type Model struct {
	mu     sync.Mutex
	rng    *rand.Rand
	local  Profile // from == to
	remote Profile // from != to
}

// NewModel returns a model with the given local and remote profiles.
// Deterministic for a given seed.
func NewModel(seed int64, local, remote Profile) *Model {
	return &Model{rng: rand.New(rand.NewSource(seed)), local: local, remote: remote}
}

// Delay returns the simulated one-way latency for a message of size bytes
// from one host to another.
func (m *Model) Delay(from, to string, bytes int) time.Duration {
	if m == nil {
		return 0
	}
	p := m.remote
	if from == to {
		p = m.local
	}
	d := p.Base + time.Duration(bytes/1024)*p.PerKB
	if p.JitterFrac > 0 && p.Base > 0 {
		m.mu.Lock()
		j := m.rng.Float64()
		m.mu.Unlock()
		d += time.Duration(j * p.JitterFrac * float64(p.Base))
	}
	return d
}
