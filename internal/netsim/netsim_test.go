package netsim

import (
	"testing"
	"time"
)

func TestNilModelIsFree(t *testing.T) {
	var m *Model
	if d := m.Delay("a", "b", 4096); d != 0 {
		t.Fatalf("nil model delay = %v, want 0", d)
	}
}

func TestLoopbackLocalLink(t *testing.T) {
	m := NewModel(1, Loopback, SameAZ)
	if d := m.Delay("silo-1", "silo-1", 1024); d != 0 {
		t.Fatalf("local delay = %v, want 0", d)
	}
}

func TestRemoteLinkHasBaseLatency(t *testing.T) {
	m := NewModel(1, Loopback, SameAZ)
	d := m.Delay("silo-1", "silo-2", 0)
	if d < SameAZ.Base {
		t.Fatalf("remote delay = %v, want >= %v", d, SameAZ.Base)
	}
	maxJitter := SameAZ.Base + time.Duration(float64(SameAZ.Base)*SameAZ.JitterFrac)
	if d > maxJitter {
		t.Fatalf("remote delay = %v, want <= %v", d, maxJitter)
	}
}

func TestPayloadSizeAddsCost(t *testing.T) {
	prof := Profile{Base: time.Millisecond, PerKB: 100 * time.Microsecond}
	m := NewModel(1, Loopback, prof)
	small := m.Delay("a", "b", 0)
	large := m.Delay("a", "b", 10*1024)
	if large-small != 10*100*time.Microsecond {
		t.Fatalf("size cost = %v, want 1ms", large-small)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := NewModel(42, Loopback, SameAZ)
	b := NewModel(42, Loopback, SameAZ)
	for i := 0; i < 10; i++ {
		if da, db := a.Delay("x", "y", 0), b.Delay("x", "y", 0); da != db {
			t.Fatalf("same-seed models diverged at call %d: %v vs %v", i, da, db)
		}
	}
}

func TestCrossAZSlowerThanSameAZ(t *testing.T) {
	if CrossAZ.Base <= SameAZ.Base {
		t.Fatal("CrossAZ profile should be slower than SameAZ")
	}
}
