package rebalance

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"aodb/internal/core"
	"aodb/internal/kvstore"
	"aodb/internal/placement"
	"aodb/internal/telemetry"
)

// mutView is a membership view a test can grow mid-run.
type mutView struct {
	mu    sync.Mutex
	silos []string
}

func (v *mutView) View() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	return append([]string(nil), v.silos...)
}

func (v *mutView) set(silos ...string) {
	v.mu.Lock()
	v.silos = silos
	v.mu.Unlock()
}

type counterState struct{ N int }

type counterActor struct{ state counterState }

type addMsg struct{ N int }
type getMsg struct{}

func (c *counterActor) State() any { return &c.state }

func (c *counterActor) Receive(ctx *core.Context, msg any) (any, error) {
	switch m := msg.(type) {
	case addMsg:
		c.state.N += m.N
		return c.state.N, nil
	case getMsg:
		return c.state.N, nil
	}
	return nil, fmt.Errorf("unknown message %T", msg)
}

func newRuntime(t *testing.T, view *mutView, strat placement.Strategy) *core.Runtime {
	t.Helper()
	kv, err := kvstore.Open(kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = kv.Close() })
	rt, err := core.New(core.Config{Store: kv, View: view, Placement: strat})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = rt.Shutdown(ctx)
	})
	if err := rt.RegisterKind("Counter", func() core.Actor { return &counterActor{} },
		core.WithPersistence(core.PersistOnDeactivate)); err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestPlacementDiffOnJoin: actors placed by consistent hashing on a
// one-silo cluster migrate to their hash-ideal homes when a second silo
// joins, and every actor keeps its state.
func TestPlacementDiffOnJoin(t *testing.T) {
	strat := placement.NewConsistentHash()
	view := &mutView{}
	view.set("silo-1")
	rt := newRuntime(t, view, strat)
	if _, err := rt.AddSilo("silo-1", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddSilo("silo-2", nil); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	const actors = 24
	for i := 0; i < actors; i++ {
		if _, err := rt.Call(ctx, core.ID{Kind: "Counter", Key: fmt.Sprintf("a%d", i)}, addMsg{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	s1, _ := rt.Silo("silo-1")
	if s1.Activations() != actors {
		t.Fatalf("pre-join: silo-1 hosts %d, want %d", s1.Activations(), actors)
	}

	rb, err := New(Config{Runtime: rt, Silo: "silo-1", View: view, Strategy: strat, MaxMoves: actors})
	if err != nil {
		t.Fatal(err)
	}
	// Balanced cluster: nothing to do.
	if moves := rb.Plan(); len(moves) != 0 {
		t.Fatalf("plan before join = %v, want none", moves)
	}

	view.set("silo-1", "silo-2")
	moves := rb.Plan()
	if len(moves) == 0 {
		t.Fatal("no moves planned after join")
	}
	for _, m := range moves {
		if m.To != "silo-2" || m.Reason != "placement" {
			t.Fatalf("unexpected move %+v", m)
		}
	}
	if n := rb.Rebalance(ctx); n != len(moves) {
		t.Fatalf("executed %d of %d planned moves", n, len(moves))
	}

	// Every actor now sits where the strategy wants it, state intact.
	for i := 0; i < actors; i++ {
		id := core.ID{Kind: "Counter", Key: fmt.Sprintf("a%d", i)}
		want, err := strat.Place(id.String(), "", []string{"silo-1", "silo-2"})
		if err != nil {
			t.Fatal(err)
		}
		reg, ok := rt.Directory().Lookup(id.String())
		if !ok || reg.Silo != want {
			t.Fatalf("%s registered at %v, want %s", id, reg.Silo, want)
		}
		v, err := rt.Call(ctx, id, getMsg{})
		if err != nil {
			t.Fatal(err)
		}
		if v.(int) != i {
			t.Fatalf("%s state = %v, want %d", id, v, i)
		}
	}
	// Converged: a second round plans nothing.
	if moves := rb.Plan(); len(moves) != 0 {
		t.Fatalf("second round plans %v, want none", moves)
	}
}

// TestOverloadShedding: a silo reporting load far above the mean sheds
// its profiler-hottest actors to the least-loaded member.
func TestOverloadShedding(t *testing.T) {
	view := &mutView{}
	view.set("silo-1", "silo-2", "silo-3")
	rt := newRuntime(t, view, nil)
	for _, s := range []string{"silo-1", "silo-2", "silo-3"} {
		if _, err := rt.AddSilo(s, nil); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()

	prof := telemetry.NewProfiler(telemetry.ProfilerConfig{K: 8})
	// Activate a few actors; force them onto silo-1 via Migrate so the
	// profiler labels line up regardless of random placement.
	for i := 0; i < 4; i++ {
		id := core.ID{Kind: "Counter", Key: fmt.Sprintf("hot%d", i)}
		if _, err := rt.Call(ctx, id, addMsg{N: 1}); err != nil {
			t.Fatal(err)
		}
		if err := rt.Migrate(ctx, id, "silo-1"); err != nil {
			t.Fatal(err)
		}
		prof.ObserveTurn(id.String(), "Counter", "silo-1", time.Duration(100-i)*time.Millisecond, 1)
	}

	loads := map[string]int64{"silo-1": 900, "silo-2": 100, "silo-3": 200}
	rb, err := New(Config{
		Runtime:  rt,
		Silo:     "silo-1",
		View:     view,
		Profiler: prof,
		Loads:    func() map[string]int64 { return loads },
		MaxMoves: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	moves := rb.Plan()
	if len(moves) == 0 {
		t.Fatal("overloaded silo planned no shed")
	}
	for _, m := range moves {
		if m.Reason != "overload" {
			t.Fatalf("unexpected reason in %+v", m)
		}
		if m.To != "silo-2" {
			t.Fatalf("shed target %s, want least-loaded silo-2", m.To)
		}
	}
	// Budget: at most a quarter of MaxMoves per round.
	if len(moves) > 2 {
		t.Fatalf("shed %d moves in one round, want a conservative trickle", len(moves))
	}
	if n := rb.Execute(ctx, moves); n != len(moves) {
		t.Fatalf("executed %d/%d", n, len(moves))
	}
	for _, m := range moves {
		reg, ok := rt.Directory().Lookup(m.Actor.String())
		if !ok || reg.Silo != "silo-2" {
			t.Fatalf("%s at %v after shed", m.Actor, reg.Silo)
		}
	}

	// Balanced loads: no shedding.
	loads = map[string]int64{"silo-1": 300, "silo-2": 280, "silo-3": 320}
	if moves := rb.Plan(); len(moves) != 0 {
		t.Fatalf("balanced cluster planned %v", moves)
	}
}

// TestNoMovesWithoutQuorumOfView: a silo that has fallen out of the
// membership view (suspected dead) must not shuffle actors around.
func TestNoMovesWithoutQuorumOfView(t *testing.T) {
	view := &mutView{}
	view.set("silo-2", "silo-3") // silo-1 not in view
	rt := newRuntime(t, view, placement.NewConsistentHash())
	for _, s := range []string{"silo-1", "silo-2", "silo-3"} {
		if _, err := rt.AddSilo(s, nil); err != nil {
			t.Fatal(err)
		}
	}
	rb, err := New(Config{Runtime: rt, Silo: "silo-1", View: view, Strategy: placement.NewConsistentHash()})
	if err != nil {
		t.Fatal(err)
	}
	if moves := rb.Plan(); len(moves) != 0 {
		t.Fatalf("out-of-view silo planned %v", moves)
	}
}
