// Package rebalance plans and executes live actor migrations when the
// cluster changes shape or a silo runs hot.
//
// Two signals drive it. The placement diff: under a deterministic
// strategy (consistent hashing), a membership change moves some actors'
// ideal homes, and every activation still sitting on its old home is a
// remote hop on every call until it moves — the planner computes
// exactly the hash-diff set. And the load signal: the ActorProfiler's
// top-K sketch names the hottest activations on an overloaded silo, and
// gossip's piggybacked per-silo loads name the silos with headroom; the
// planner sheds the former to the latter. Execution is core.Migrate's
// live hand-off — drain with a state flush, redirect markers, version
// fences — so acked calls are neither lost nor double-executed while
// actors are in flight.
package rebalance

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"aodb/internal/clock"
	"aodb/internal/core"
	"aodb/internal/metrics"
	"aodb/internal/placement"
	"aodb/internal/telemetry"
)

// Viewer is the live silo set (cluster.Provider, gossip.Agent, or a
// static view).
type Viewer interface {
	View() []string
}

// Move is one planned migration.
type Move struct {
	Actor  core.ID
	From   string
	To     string
	Reason string // "placement" or "overload"
}

// Config configures a Rebalancer. One Rebalancer plans for one silo —
// it only ever moves actors *off* Silo, so every cluster member runs
// its own and no coordination is needed (each source drains itself).
type Config struct {
	// Runtime hosts Silo and executes migrations. Required.
	Runtime *core.Runtime
	// Silo is the silo whose activations this rebalancer manages.
	Silo string
	// View is the live membership; migration targets come from it.
	// Required.
	View Viewer
	// Strategy, when set, enables placement-diff planning: any local
	// activation whose Strategy.Place target is another silo is moved
	// there. Leave nil for non-deterministic strategies (random,
	// prefer-local) — they have no stable target to diff against.
	Strategy placement.Strategy
	// Profiler, when set, steers overload shedding toward the silo's
	// hottest activations (top-K CPU attribution). Optional: without it,
	// shedding falls back to plain activation counts — any local actor
	// is a candidate, which still relieves an overloaded silo, just
	// without picking the most profitable movers first.
	Profiler *telemetry.ActorProfiler
	// Loads reports the latest known per-silo load (gossip's piggybacked
	// Load values). Nil disables overload shedding.
	Loads func() map[string]int64
	// MaxMoves caps migrations per planning round (default 32): a big
	// membership change rebalances over several rounds instead of
	// draining half the silo at once.
	MaxMoves int
	// OverloadRatio is the shed threshold as a multiple of the cluster
	// mean load (default 1.5).
	OverloadRatio float64
	// DrainTimeout bounds each migration's source drain; past it the
	// hand-off is forced and the laggard fenced (default 5s).
	DrainTimeout time.Duration
	// Every is the background planning period (default 10s); membership
	// events trigger immediate rounds via Notify.
	Every time.Duration
	// Clock defaults to the real clock.
	Clock clock.Clock
	// Metrics receives rebalance instrumentation; nil allocates one.
	Metrics *metrics.Registry
}

// Rebalancer owns one silo's share of cluster rebalancing.
type Rebalancer struct {
	cfg Config

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
	once sync.Once

	mPlanned  *metrics.Counter
	mMoved    *metrics.Counter
	mFailed   *metrics.Counter
	mOverload *metrics.Counter
}

// New builds a Rebalancer.
func New(cfg Config) (*Rebalancer, error) {
	if cfg.Runtime == nil {
		return nil, errors.New("rebalance: needs a runtime")
	}
	if cfg.Silo == "" {
		return nil, errors.New("rebalance: needs a silo name")
	}
	if cfg.View == nil {
		return nil, errors.New("rebalance: needs a membership view")
	}
	if cfg.MaxMoves <= 0 {
		cfg.MaxMoves = 32
	}
	if cfg.OverloadRatio <= 1 {
		cfg.OverloadRatio = 1.5
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	if cfg.Every <= 0 {
		cfg.Every = 10 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	return &Rebalancer{
		cfg:       cfg,
		kick:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		mPlanned:  cfg.Metrics.Counter("rebalance.moves.planned"),
		mMoved:    cfg.Metrics.Counter("rebalance.moves.done"),
		mFailed:   cfg.Metrics.Counter("rebalance.moves.failed"),
		mOverload: cfg.Metrics.Counter("rebalance.moves.overload"),
	}, nil
}

// Plan computes this round's migrations off cfg.Silo: first the
// placement diff against the current view, then overload shedding,
// capped at MaxMoves.
func (rb *Rebalancer) Plan() []Move {
	view := append([]string(nil), rb.cfg.View.View()...)
	sort.Strings(view)
	if len(view) < 2 || !contains(view, rb.cfg.Silo) {
		// Nowhere to move to, or this silo is itself out of the view
		// (suspected dead): moving actors around would fight failover.
		return nil
	}
	silo, ok := rb.cfg.Runtime.Silo(rb.cfg.Silo)
	if !ok {
		return nil
	}
	var moves []Move
	planned := make(map[core.ID]bool)

	if rb.cfg.Strategy != nil {
		for _, id := range silo.ActiveIDs() {
			if len(moves) >= rb.cfg.MaxMoves {
				break
			}
			want, err := rb.cfg.Strategy.Place(id.String(), rb.cfg.Silo, view)
			if err != nil || want == rb.cfg.Silo {
				continue
			}
			planned[id] = true
			moves = append(moves, Move{Actor: id, From: rb.cfg.Silo, To: want, Reason: "placement"})
		}
	}

	if rb.cfg.Loads != nil && len(moves) < rb.cfg.MaxMoves {
		moves = rb.planShed(silo, view, planned, moves)
	}
	rb.mPlanned.Add(int64(len(moves)))
	return moves
}

// planShed appends overload moves: when this silo's reported load runs
// OverloadRatio above the cluster mean, local actors go to the
// least-loaded member — the profiler's hottest first when one is
// running, otherwise any local activations (plain-count shedding).
func (rb *Rebalancer) planShed(silo *core.Silo, view []string, planned map[core.ID]bool, moves []Move) []Move {
	loads := rb.cfg.Loads()
	if len(loads) == 0 {
		return moves
	}
	var mine, total int64
	counted := 0
	coolest := ""
	var coolestLoad int64
	for _, s := range view {
		l, ok := loads[s]
		if !ok {
			continue
		}
		total += l
		counted++
		if s == rb.cfg.Silo {
			mine = l
			continue
		}
		if coolest == "" || l < coolestLoad {
			coolest, coolestLoad = s, l
		}
	}
	if counted < 2 || coolest == "" {
		return moves
	}
	mean := float64(total) / float64(counted)
	if float64(mine) <= rb.cfg.OverloadRatio*mean {
		return moves
	}
	// Shed conservatively: at most a quarter of the round budget, so a
	// load spike moves a few hot actors and re-measures rather than
	// stampeding the coolest silo.
	budget := rb.cfg.MaxMoves / 4
	if budget < 1 {
		budget = 1
	}
	if rb.cfg.Profiler != nil {
		for _, hot := range rb.cfg.Profiler.HotActors() {
			if budget == 0 || len(moves) >= rb.cfg.MaxMoves {
				break
			}
			if hot.Label != rb.cfg.Silo {
				continue // hosted elsewhere (or stale sketch residue)
			}
			id, err := core.ParseID(hot.Key)
			if err != nil || planned[id] {
				continue
			}
			planned[id] = true
			moves = append(moves, Move{Actor: id, From: rb.cfg.Silo, To: coolest, Reason: "overload"})
			budget--
		}
		return moves
	}
	// No profiler: shed by plain activation count. Every local actor is
	// equally anonymous, so take them in ActiveIDs' stable order — the
	// next round re-measures and sheds again if the silo is still hot.
	for _, id := range silo.ActiveIDs() {
		if budget == 0 || len(moves) >= rb.cfg.MaxMoves {
			break
		}
		if planned[id] {
			continue
		}
		planned[id] = true
		moves = append(moves, Move{Actor: id, From: rb.cfg.Silo, To: coolest, Reason: "overload"})
		budget--
	}
	return moves
}

// Execute runs the planned migrations, each drain bounded by
// DrainTimeout. It returns how many completed; failed moves are counted
// and skipped (the next round re-plans from live state).
func (rb *Rebalancer) Execute(ctx context.Context, moves []Move) int {
	doneCount := 0
	for _, m := range moves {
		if ctx.Err() != nil {
			return doneCount
		}
		mctx, cancel := context.WithTimeout(ctx, rb.cfg.DrainTimeout)
		err := rb.cfg.Runtime.Migrate(mctx, m.Actor, m.To)
		cancel()
		if err != nil {
			rb.mFailed.Inc()
			continue
		}
		doneCount++
		rb.mMoved.Inc()
		if m.Reason == "overload" {
			rb.mOverload.Inc()
		}
	}
	return doneCount
}

// Rebalance runs one plan+execute round.
func (rb *Rebalancer) Rebalance(ctx context.Context) int {
	return rb.Execute(ctx, rb.Plan())
}

// Notify kicks an immediate planning round (membership changed,
// overload detected). Non-blocking; rounds coalesce.
func (rb *Rebalancer) Notify() {
	select {
	case rb.kick <- struct{}{}:
	default:
	}
}

// Start launches the background loop: a round every cfg.Every, plus
// immediate rounds on Notify. Call Stop to end it.
func (rb *Rebalancer) Start() {
	go func() {
		defer close(rb.done)
		t := rb.cfg.Clock.NewTicker(rb.cfg.Every)
		defer t.Stop()
		for {
			select {
			case <-rb.stop:
				return
			case <-rb.kick:
			case <-t.C():
			}
			ctx, cancel := context.WithTimeout(context.Background(), rb.cfg.Every)
			rb.Rebalance(ctx)
			cancel()
		}
	}()
}

// Stop ends the background loop and waits for the in-flight round.
func (rb *Rebalancer) Stop() {
	rb.once.Do(func() { close(rb.stop) })
	<-rb.done
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
