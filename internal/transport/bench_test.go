package transport

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"aodb/internal/metrics"
)

// benchKeys spreads benchmark traffic over 64 actor keys (and thus over
// the connection stripes).
func benchKeys() []string {
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("actor-%d", i)
	}
	return keys
}

// BenchmarkTransportCall measures cross-silo request/response round
// trips over real loopback TCP, batching vs the NoBatching baseline, at
// 1 and 8 concurrent callers. Throughput is the inverse of ns/op; the
// frames/flush metric shows how much write coalescing the load level
// actually buys (1.0 by construction for the baseline).
func BenchmarkTransportCall(b *testing.B) {
	for _, mode := range []struct {
		name    string
		noBatch bool
	}{
		{"batch", false},
		{"nobatch", true},
	} {
		for _, callers := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/callers=%d", mode.name, callers), func(b *testing.B) {
				reg := metrics.NewRegistry() // caller side only: request-path flushes
				a, err := NewTCPWithOptions("bench-a", "127.0.0.1:0", TCPOptions{NoBatching: mode.noBatch, Metrics: reg})
				if err != nil {
					b.Fatal(err)
				}
				defer a.Close()
				peer, err := NewTCPWithOptions("bench-b", "127.0.0.1:0", TCPOptions{NoBatching: mode.noBatch})
				if err != nil {
					b.Fatal(err)
				}
				defer peer.Close()
				a.SetPeer("bench-b", peer.Addr())
				if err := peer.Register("bench-b", echoHandler); err != nil {
					b.Fatal(err)
				}
				// Warm the connections so dials don't land in the timing.
				if _, err := a.Call(context.Background(), "bench-b", Request{TargetKey: "warm", Payload: testPayload{0}}); err != nil {
					b.Fatal(err)
				}
				framesBase := reg.Counter("transport.frames.sent").Value()
				flushesBase := reg.Counter("transport.flushes").Value()
				// Key strings are precomputed so the loop measures the
				// transport, not fmt.
				keys := benchKeys()

				b.ResetTimer()
				var next atomic.Int64
				var wg sync.WaitGroup
				for c := 0; c < callers; c++ {
					wg.Add(1)
					go func(c int) {
						defer wg.Done()
						ctx := context.Background()
						for {
							i := next.Add(1)
							if i > int64(b.N) {
								return
							}
							if _, err := a.Call(ctx, "bench-b", Request{TargetKey: keys[i%64], Payload: testPayload{int(i)}}); err != nil {
								b.Error(err)
								return
							}
						}
					}(c)
				}
				wg.Wait()
				b.StopTimer()

				frames := reg.Counter("transport.frames.sent").Value() - framesBase
				flushes := reg.Counter("transport.flushes").Value() - flushesBase
				if flushes > 0 {
					b.ReportMetric(float64(frames)/float64(flushes), "frames/flush")
				}
			})
		}
	}
}

// BenchmarkTransportSend measures one-way frame throughput (ingest-style
// traffic: fire-and-forget inserts). Each sender waits only for its
// frame to reach the wire, so this isolates the write path the batching
// work targets.
func BenchmarkTransportSend(b *testing.B) {
	for _, mode := range []struct {
		name    string
		noBatch bool
	}{
		{"batch", false},
		{"nobatch", true},
	} {
		for _, callers := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/callers=%d", mode.name, callers), func(b *testing.B) {
				reg := metrics.NewRegistry()
				a, err := NewTCPWithOptions("bench-a", "127.0.0.1:0", TCPOptions{NoBatching: mode.noBatch, Metrics: reg})
				if err != nil {
					b.Fatal(err)
				}
				defer a.Close()
				var received atomic.Int64
				peer, err := NewTCPWithOptions("bench-b", "127.0.0.1:0", TCPOptions{NoBatching: mode.noBatch})
				if err != nil {
					b.Fatal(err)
				}
				defer peer.Close()
				a.SetPeer("bench-b", peer.Addr())
				if err := peer.Register("bench-b", func(context.Context, Request) (any, error) {
					received.Add(1)
					return nil, nil
				}); err != nil {
					b.Fatal(err)
				}
				if err := a.Send(context.Background(), "bench-b", Request{TargetKey: "warm", Payload: testPayload{0}}); err != nil {
					b.Fatal(err)
				}
				framesBase := reg.Counter("transport.frames.sent").Value()
				flushesBase := reg.Counter("transport.flushes").Value()
				keys := benchKeys()

				b.ResetTimer()
				var next atomic.Int64
				var wg sync.WaitGroup
				for c := 0; c < callers; c++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						ctx := context.Background()
						for {
							i := next.Add(1)
							if i > int64(b.N) {
								return
							}
							if err := a.Send(ctx, "bench-b", Request{TargetKey: keys[i%64], Payload: testPayload{int(i)}}); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
				b.StopTimer()

				frames := reg.Counter("transport.frames.sent").Value() - framesBase
				flushes := reg.Counter("transport.flushes").Value() - flushesBase
				if flushes > 0 {
					b.ReportMetric(float64(frames)/float64(flushes), "frames/flush")
				}
			})
		}
	}
}
