// Package transport moves actor messages between silos.
//
// Two implementations are provided. The Local transport connects silos
// living in one process and charges each delivery the latency a netsim
// Model assigns to the link — this is what the benchmark harness uses to
// reproduce the paper's multi-server EC2 deployment on a single machine.
// The TCP transport connects real processes with gob-encoded frames over
// multiplexed connections, and backs the cmd/shmserver + cmd/shmload pair.
package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"aodb/internal/clock"
	"aodb/internal/netsim"
	"aodb/internal/telemetry"
)

// Request is one actor invocation in flight between silos.
type Request struct {
	TargetKind string
	TargetKey  string
	Method     string
	Payload    any
	Sender     string // originating silo
	// Chain carries the synchronous call chain for cycle detection.
	Chain []string
	// Trace is the caller's trace context; the zero value means the
	// request is not sampled. Both transports carry it to the target
	// silo so turn spans parent correctly across the wire.
	Trace telemetry.SpanContext
	// HLC is the sender's hybrid-logical-clock stamp (zero when the
	// sender keeps no flight journal). Receivers merge it into their own
	// clock so events on both sides of the hop get a causal order.
	HLC uint64
	// SizeHint is the approximate encoded size in bytes used by the
	// network model; zero means a small control message.
	SizeHint int
}

// Handler processes an inbound request on the owning silo.
type Handler func(ctx context.Context, req Request) (any, error)

// Transport delivers requests to named silos.
type Transport interface {
	// Register binds the inbound handler for a silo hosted at this
	// endpoint. A silo must be registered before peers can call it.
	Register(node string, h Handler) error
	// Call delivers req to node and waits for the response.
	Call(ctx context.Context, node string, req Request) (any, error)
	// Send delivers req to node without waiting for a result.
	Send(ctx context.Context, node string, req Request) error
	// Close releases connections and stops serving.
	Close() error
}

// Errors reported by transports.
var (
	ErrUnknownNode = errors.New("transport: unknown node")
	ErrClosed      = errors.New("transport: closed")
	// ErrCircuitOpen reports a call rejected by an open circuit breaker;
	// the target silo has been failing and is being routed around.
	ErrCircuitOpen = errors.New("transport: circuit open")
)

// Deregisterer is implemented by transports that can take a node out of
// service at runtime (simulated silo crash, graceful decommission).
// Wrapper transports forward Deregister to their inner transport.
type Deregisterer interface {
	Deregister(node string)
}

// UnreachableError marks a delivery failure at the transport level — the
// target node could not be reached at all (dead connection, failed dial,
// deregistered node), as opposed to an error the target's handler
// returned. Unreachable failures are transient from the caller's point of
// view: the node may restart, or the actor may be re-placed elsewhere.
type UnreachableError struct {
	Node string
	Err  error
}

func (e *UnreachableError) Error() string {
	return fmt.Sprintf("transport: %s unreachable: %v", e.Node, e.Err)
}

func (e *UnreachableError) Unwrap() error { return e.Err }

// IsUnreachable reports whether err indicates the target node could not
// be reached at the transport level. Circuit-open rejections count too:
// they stand in for the unreachability the breaker observed.
func IsUnreachable(err error) bool {
	var u *UnreachableError
	return errors.As(err, &u) || errors.Is(err, ErrCircuitOpen)
}

// RemoteError wraps an error string that crossed the wire.
type RemoteError struct {
	Node string
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote error from %s: %s", e.Node, e.Msg)
}

// RedirectError reports that the addressed node rejected the request and
// named the node that should serve it — the wire form of core's
// wrong-silo answer (an activation race lost, or an actor migrated
// away). It is transient: re-routing to Target is expected to succeed.
type RedirectError struct {
	Node   string // the node that answered
	Target string // the node it redirected to
	Msg    string
}

func (e *RedirectError) Error() string {
	return fmt.Sprintf("transport: %s redirects to %s: %s", e.Node, e.Target, e.Msg)
}

// RedirectTarget names the node to re-route to; core's wrong-silo error
// implements the same method, so routing code handles local and remote
// redirects uniformly.
func (e *RedirectError) RedirectTarget() string { return e.Target }

// TransientError marks redirects safe to retry (at the new target).
func (e *RedirectError) TransientError() bool { return true }

// Local is an in-process transport with simulated link latency. It is the
// default for tests, examples, and the benchmark harness.
type Local struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	model    *netsim.Model
	clk      clock.Clock
	closed   bool

	localCalls  atomic.Int64
	remoteCalls atomic.Int64
}

// NewLocal returns a local transport. model may be nil for zero-latency
// links; clk may be nil for the real clock.
func NewLocal(model *netsim.Model, clk clock.Clock) *Local {
	if clk == nil {
		clk = clock.Real()
	}
	return &Local{handlers: make(map[string]Handler), model: model, clk: clk}
}

// Register binds node's inbound handler.
func (l *Local) Register(node string, h Handler) error {
	if h == nil {
		return errors.New("transport: nil handler")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if _, ok := l.handlers[node]; ok {
		return fmt.Errorf("transport: node %q already registered", node)
	}
	l.handlers[node] = h
	return nil
}

// Deregister removes a node (used when simulating silo failure).
func (l *Local) Deregister(node string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.handlers, node)
}

func (l *Local) handler(node string) (Handler, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.closed {
		return nil, ErrClosed
	}
	h, ok := l.handlers[node]
	if !ok {
		// A node the local transport does not know is either never-added
		// or deregistered (simulated crash); both are unreachability.
		return nil, &UnreachableError{Node: node, Err: fmt.Errorf("%w: %q", ErrUnknownNode, node)}
	}
	return h, nil
}

func (l *Local) delay(ctx context.Context, from, to string, size int) error {
	if l.model == nil {
		return nil
	}
	d := l.model.Delay(from, to, size)
	if d <= 0 {
		return nil
	}
	t := l.clk.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C():
		return nil
	}
}

// Call delivers req to node, paying the simulated request and response
// latency, and returns the handler's result.
func (l *Local) Call(ctx context.Context, node string, req Request) (any, error) {
	h, err := l.handler(node)
	if err != nil {
		return nil, err
	}
	if req.Sender == node {
		l.localCalls.Add(1)
	} else {
		l.remoteCalls.Add(1)
	}
	if err := l.delay(ctx, req.Sender, node, req.SizeHint); err != nil {
		return nil, err
	}
	resp, err := h(ctx, req)
	if err != nil {
		return nil, err
	}
	if err := l.delay(ctx, node, req.Sender, 0); err != nil {
		return nil, err
	}
	return resp, nil
}

// Send delivers req without waiting for the handler to finish.
func (l *Local) Send(ctx context.Context, node string, req Request) error {
	h, err := l.handler(node)
	if err != nil {
		return err
	}
	go func() {
		if err := l.delay(ctx, req.Sender, node, req.SizeHint); err != nil {
			return
		}
		_, _ = h(context.WithoutCancel(ctx), req)
	}()
	return nil
}

// Stats returns how many calls stayed on their silo vs crossed silos.
// Calls from external clients (empty sender) count as remote.
func (l *Local) Stats() (local, remote int64) {
	return l.localCalls.Load(), l.remoteCalls.Load()
}

// Close shuts the transport down.
func (l *Local) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	l.handlers = map[string]Handler{}
	return nil
}
