package transport

import (
	"context"
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"aodb/internal/codec"
	"aodb/internal/metrics"
	"aodb/internal/telemetry"
)

// tcpMetrics caches the TCP transport's instruments so the wire hot path
// never takes the registry lock.
type tcpMetrics struct {
	flushFrames  *metrics.Histogram // transport.flush.frames: frames coalesced per flush
	flushLatency *metrics.Histogram // transport.flush.latency: encode+flush wall time per batch
	sendqDepth   *metrics.Gauge     // transport.sendq.depth: frames queued or waiting to queue
	framesSent   *metrics.Counter   // transport.frames.sent
	flushes      *metrics.Counter   // transport.flushes
	replyErrors  *metrics.Counter   // transport.reply_write_errors: lost responses
	dispatchPool *metrics.Counter   // transport.dispatch.pooled: inbound frames a pool worker took
	dispatchGo   *metrics.Counter   // transport.dispatch.spawned: inbound frames that spilled to a goroutine
	evictions    *metrics.Counter   // transport.conn.evictions: connections dropped on failure
}

func newTCPMetrics(reg *metrics.Registry) *tcpMetrics {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &tcpMetrics{
		flushFrames:  reg.Histogram("transport.flush.frames"),
		flushLatency: reg.Histogram("transport.flush.latency"),
		sendqDepth:   reg.Gauge("transport.sendq.depth"),
		framesSent:   reg.Counter("transport.frames.sent"),
		flushes:      reg.Counter("transport.flushes"),
		replyErrors:  reg.Counter("transport.reply_write_errors"),
		dispatchPool: reg.Counter("transport.dispatch.pooled"),
		dispatchGo:   reg.Counter("transport.dispatch.spawned"),
		evictions:    reg.Counter("transport.conn.evictions"),
	}
}

// errConnClosed reports a connection torn down locally (peer hung up or
// the transport closed) as seen by frames still waiting to be written.
var errConnClosed = errors.New("transport: connection closed")

// maxFlushYields bounds how many scheduler yields one batch may spend
// gathering frames before it must flush (see writeBatch).
const maxFlushYields = 8

// sendReq is one frame queued for a connection's writer.
type sendReq struct {
	frame *codec.Frame
	// done, when non-nil, receives the write result exactly once; it must
	// be buffered. One-way sends wait on it so write failures surface.
	done chan error
	// span is the caller's sampled trace span; the time the frame spends
	// between enqueue and wire is attributed to it as flush wait.
	span *telemetry.Span
	enq  time.Time // set when span != nil
	// reply marks server-side responses: failures feed reply_write_errors.
	reply bool
}

// frameWriter owns every write on one connection. In batching mode a
// dedicated goroutine (run) drains the bounded send queue through a
// buffered stream, flushing when the queue goes empty or a frame/byte cap
// is hit — under load many frames share one syscall, under light load a
// frame is one flush away. With noBatch the caller writes directly
// through the stream's mutex, which is the transport's measured baseline.
//
// A writer dies exactly once (fail): the connection closes, the eviction
// hook runs, and every frame still queued — or mid-enqueue, guarded by
// the inflight count — is failed rather than stranded.
type frameWriter struct {
	peer   string // remote node name; "" on the serving side
	raw    net.Conn
	stream *codec.Stream
	m      *tcpMetrics
	onDead func(error) // eviction / pending-failure hook, runs once

	noBatch   bool
	maxFrames int
	maxBytes  int

	// active counts callers currently inside a Call/Send (or inbound
	// dispatch) on this connection. It is the batching-worthwhile signal:
	// a solo caller writes inline — identical cost to the unbatched
	// baseline — because nobody else's frames could share its flush, while
	// concurrent callers go through the queue where the writer coalesces
	// them. (The TCP autocorking idea: only cork when the flow is busy.)
	active atomic.Int32

	q      chan *sendReq
	closed chan struct{}

	mu       sync.Mutex
	err      error
	inflight int // senders between the liveness check and their enqueue
}

// deadErr returns the error the writer died with, or a generic closure
// error when called before death (senders racing the teardown).
func (w *frameWriter) deadErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	return errConnClosed
}

// fail kills the writer once: records the cause, wakes the writer
// goroutine and blocked senders, closes the connection, and runs the
// eviction hook. Safe to call from any goroutine, any number of times.
func (w *frameWriter) fail(err error) {
	w.mu.Lock()
	if w.err != nil {
		w.mu.Unlock()
		return
	}
	w.err = err
	w.mu.Unlock()
	close(w.closed)
	w.raw.Close()
	if w.onDead != nil {
		w.onDead(err)
	}
}

// enqueue hands one frame to the writer, taking ownership of it in all
// outcomes: on any failure path the frame is settled (done notified,
// reply errors counted, frame pooled) before enqueue returns. The
// returned error is for the caller's control flow only. ctx bounds the
// wait for queue space (backpressure).
func (w *frameWriter) enqueue(ctx context.Context, r *sendReq) error {
	if r.span != nil {
		r.enq = time.Now()
	}
	if w.noBatch {
		return w.writeDirect(r)
	}
	if w.active.Load() <= 1 {
		// Solo caller: no concurrent frames exist to coalesce with, so the
		// queue hop to the writer goroutine would only add latency. Write
		// inline — frame-level interleaving with the writer is safe (the
		// stream serializes writes, and cross-goroutine frame order is
		// unspecified), and a failed write kills the connection the same
		// way the writer would.
		return w.writeDirect(r)
	}
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		w.finish(r, err)
		return err
	}
	w.inflight++
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		w.inflight--
		w.mu.Unlock()
	}()
	w.m.sendqDepth.Add(1)
	// Fast path: a non-blocking send costs no selectgo pass. Queue space
	// is the common case; death and backpressure fall through to the full
	// select. A frame landing in q after the writer died is still drained:
	// drainFail cannot finish while this sender's inflight count is held.
	select {
	case w.q <- r:
		return nil
	default:
	}
	select {
	case w.q <- r:
		return nil
	case <-w.closed:
		w.m.sendqDepth.Add(-1)
		err := w.deadErr()
		w.finish(r, err)
		return err
	case <-ctx.Done():
		w.m.sendqDepth.Add(-1)
		w.finish(r, ctx.Err())
		return ctx.Err()
	}
}

// writeDirect is the NoBatching path: encode and flush inline on the
// caller's goroutine, serialized by the stream's write mutex — the
// pre-batching behavior, kept as the measured baseline. A failed write
// kills the connection immediately so the next call redials instead of
// hitting a cached broken conn.
func (w *frameWriter) writeDirect(r *sendReq) error {
	start := time.Now()
	err := w.stream.Write(r.frame)
	if err == nil {
		w.m.flushes.Inc()
		w.m.flushFrames.Record(1)
		w.m.flushLatency.RecordDuration(time.Since(start))
		w.m.framesSent.Inc()
	}
	w.finish(r, err)
	if err != nil {
		w.fail(err)
	}
	return err
}

// finish settles one frame the writer took ownership of: attributes its
// queue-to-wire time to the caller's span, counts lost replies, returns
// the frame to the pool, and delivers the result to a waiting sender.
func (w *frameWriter) finish(r *sendReq, err error) {
	if r.span != nil {
		r.span.AddFlushWait(time.Since(r.enq))
	}
	if err != nil && r.reply {
		w.m.replyErrors.Inc()
	}
	codec.PutFrame(r.frame)
	r.frame = nil
	if r.done != nil {
		r.done <- err
	}
}

// run is the connection's sole writer goroutine in batching mode.
func (w *frameWriter) run(wg *sync.WaitGroup) {
	defer wg.Done()
	batch := make([]*sendReq, 0, w.maxFrames)
	for {
		// Under load the queue is non-empty and the non-blocking receive
		// skips the two-case select. (Frames taken this way after death
		// are fine: the write fails and writeBatch settles them.)
		var r *sendReq
		select {
		case r = <-w.q:
		default:
			select {
			case r = <-w.q:
			case <-w.closed:
				w.drainFail()
				return
			}
		}
		if !w.writeBatch(r, &batch) {
			w.drainFail()
			return
		}
	}
}

// writeBatch encodes first plus whatever else the queue holds — up to
// the frame/byte caps — then flushes once. Smart batching: the flush
// happens as soon as the queue goes empty, so idle-period latency is one
// flush, not a Nagle-style timer. Returns false when the writer died.
func (w *frameWriter) writeBatch(first *sendReq, scratch *[]*sendReq) bool {
	batch := (*scratch)[:0]
	r := first
	start := time.Now()
	yields := 0
	var werr error
	for {
		werr = w.stream.WriteNoFlush(r.frame)
		batch = append(batch, r)
		if werr != nil {
			break
		}
		if len(batch) >= w.maxFrames || w.stream.Buffered() >= w.maxBytes {
			break
		}
		select {
		case r = <-w.q:
			continue
		default:
		}
		// Empty queue with callers active on the connection: their next
		// frames are one scheduler pass away (on a loaded single core a
		// sender never runs while we do). Yield so runnable senders can
		// enqueue and share this flush — each Gosched that surfaces a
		// frame buys a saved syscall and earns another try; the first
		// barren one ends the batch, so an idle connection costs one
		// wasted yield (~100ns). Capped so a steady trickle can't extend
		// a batch unboundedly.
		if yields < maxFlushYields && w.active.Load() > 1 {
			yields++
			runtime.Gosched()
			select {
			case r = <-w.q:
				continue
			default:
			}
		}
		break
	}
	if werr == nil {
		werr = w.stream.Flush()
	}
	if werr == nil {
		w.m.flushes.Inc()
		w.m.flushFrames.Record(int64(len(batch)))
		w.m.flushLatency.RecordDuration(time.Since(start))
		w.m.framesSent.Add(int64(len(batch)))
	}
	for _, br := range batch {
		w.m.sendqDepth.Add(-1)
		w.finish(br, werr)
	}
	for i := range batch {
		batch[i] = nil
	}
	*scratch = batch[:0]
	if werr != nil {
		w.fail(werr)
		return false
	}
	return true
}

// drainFail runs after the writer dies: it fails every frame still
// queued, waiting out senders that were mid-enqueue when the connection
// died (the inflight count) so no frame is left without an answer.
func (w *frameWriter) drainFail() {
	err := w.deadErr()
	for {
		select {
		case r := <-w.q:
			w.m.sendqDepth.Add(-1)
			w.finish(r, err)
			continue
		default:
		}
		w.mu.Lock()
		n := w.inflight
		w.mu.Unlock()
		if n == 0 && len(w.q) == 0 {
			return
		}
		runtime.Gosched()
	}
}
