package transport

import (
	"context"
	"errors"
	"testing"
	"time"

	"aodb/internal/clock"
)

// flakyTransport fails with UnreachableError while down.
type flakyTransport struct {
	local *Local
	down  map[string]bool
}

func (f *flakyTransport) Register(node string, h Handler) error { return f.local.Register(node, h) }
func (f *flakyTransport) Close() error                          { return f.local.Close() }
func (f *flakyTransport) Send(ctx context.Context, node string, req Request) error {
	if f.down[node] {
		return &UnreachableError{Node: node, Err: errors.New("down")}
	}
	return f.local.Send(ctx, node, req)
}
func (f *flakyTransport) Call(ctx context.Context, node string, req Request) (any, error) {
	if f.down[node] {
		return nil, &UnreachableError{Node: node, Err: errors.New("down")}
	}
	return f.local.Call(ctx, node, req)
}

func TestBreakerOpensAndProbes(t *testing.T) {
	clk := clock.NewFake(time.Unix(0, 0))
	flaky := &flakyTransport{local: NewLocal(nil, clk), down: map[string]bool{}}
	br := NewBreaker(flaky, BreakerOptions{FailureThreshold: 3, Cooldown: time.Second, Clock: clk})
	if err := br.Register("peer", echoHandler); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Healthy node: calls flow, breaker stays closed.
	if _, err := br.Call(ctx, "peer", Request{Payload: testPayload{1}}); err != nil {
		t.Fatal(err)
	}
	if br.Open("peer") {
		t.Fatal("breaker open after success")
	}

	// Node goes down: threshold unreachable failures open the circuit.
	flaky.down["peer"] = true
	for i := 0; i < 3; i++ {
		if _, err := br.Call(ctx, "peer", Request{}); !IsUnreachable(err) {
			t.Fatalf("failure %d: err = %v, want unreachable", i, err)
		}
	}
	if !br.Open("peer") {
		t.Fatal("breaker not open after threshold failures")
	}
	// While open, calls fail fast with ErrCircuitOpen — and never reach
	// the inner transport.
	if _, err := br.Call(ctx, "peer", Request{}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	// Circuit-open rejections classify as unreachable for callers.
	if _, err := br.Call(ctx, "peer", Request{}); !IsUnreachable(err) {
		t.Fatal("circuit-open not classified unreachable")
	}

	// After the cooldown the breaker admits one probe; the node is still
	// down, so the probe fails and the circuit re-opens.
	clk.Advance(time.Second + time.Millisecond)
	if _, err := br.Call(ctx, "peer", Request{}); !IsUnreachable(err) {
		t.Fatalf("probe err = %v", err)
	}
	if !br.Open("peer") {
		t.Fatal("breaker did not re-open after failed probe")
	}

	// Node restarts; after the next cooldown a successful probe closes the
	// circuit and traffic flows again.
	flaky.down["peer"] = false
	clk.Advance(time.Second + time.Millisecond)
	if _, err := br.Call(ctx, "peer", Request{Payload: testPayload{2}}); err != nil {
		t.Fatalf("probe after restart: %v", err)
	}
	if br.Open("peer") {
		t.Fatal("breaker still open after successful probe")
	}
	if _, err := br.Call(ctx, "peer", Request{Payload: testPayload{3}}); err != nil {
		t.Fatalf("call after close: %v", err)
	}
}

func TestBreakerHandlerErrorsDoNotTrip(t *testing.T) {
	local := NewLocal(nil, nil)
	br := NewBreaker(local, BreakerOptions{FailureThreshold: 2})
	br.Register("peer", func(context.Context, Request) (any, error) {
		return nil, errors.New("application error")
	})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := br.Call(ctx, "peer", Request{}); err == nil || IsUnreachable(err) {
			t.Fatalf("err = %v, want plain application error", err)
		}
	}
	if br.Open("peer") {
		t.Fatal("application errors tripped the breaker")
	}
}

func TestBreakerPerNodeIsolation(t *testing.T) {
	clk := clock.NewFake(time.Unix(0, 0))
	flaky := &flakyTransport{local: NewLocal(nil, clk), down: map[string]bool{"dead": true}}
	br := NewBreaker(flaky, BreakerOptions{FailureThreshold: 1, Cooldown: time.Minute, Clock: clk})
	br.Register("live", echoHandler)
	ctx := context.Background()
	if _, err := br.Call(ctx, "dead", Request{}); !IsUnreachable(err) {
		t.Fatalf("err = %v", err)
	}
	if !br.Open("dead") {
		t.Fatal("dead node breaker not open")
	}
	// The live node is unaffected.
	if _, err := br.Call(ctx, "live", Request{Payload: testPayload{1}}); err != nil {
		t.Fatalf("live node call: %v", err)
	}
	if br.Open("live") {
		t.Fatal("live node breaker open")
	}
}

func TestLocalDeregisteredNodeIsUnreachable(t *testing.T) {
	l := NewLocal(nil, nil)
	l.Register("peer", echoHandler)
	l.Deregister("peer")
	_, err := l.Call(context.Background(), "peer", Request{})
	if !IsUnreachable(err) {
		t.Fatalf("err = %v, want unreachable", err)
	}
	if !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode in chain", err)
	}
}
