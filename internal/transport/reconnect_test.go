package transport

import (
	"context"
	"testing"
	"time"
)

// TestTCPReconnectsAfterPeerRestart: a silo process restarts on the same
// address; the caller's pooled connection died with the old process, and
// the next Call must dial a fresh connection instead of failing forever.
func TestTCPReconnectsAfterPeerRestart(t *testing.T) {
	caller, err := NewTCP("caller", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer caller.Close()

	peer1, err := NewTCP("peer", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := peer1.Addr()
	if err := peer1.Register("peer", echoHandler); err != nil {
		t.Fatal(err)
	}
	caller.SetPeer("peer", addr)

	ctx := context.Background()
	if _, err := caller.Call(ctx, "peer", Request{Payload: testPayload{1}}); err != nil {
		t.Fatalf("first call: %v", err)
	}

	// The peer process dies.
	peer1.Close()
	// Calls during the outage fail fast (dead conn or refused dial).
	shortCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	if _, err := caller.Call(shortCtx, "peer", Request{Payload: testPayload{2}}); err == nil {
		cancel()
		t.Fatal("call during outage succeeded")
	}
	cancel()

	// The peer restarts on the same address.
	var peer2 *TCP
	deadline := time.Now().Add(5 * time.Second)
	for {
		peer2, err = NewTCP("peer", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	defer peer2.Close()
	if err := peer2.Register("peer", echoHandler); err != nil {
		t.Fatal(err)
	}

	// Calls flow again over a fresh connection.
	deadline = time.Now().Add(5 * time.Second)
	for {
		resp, err := caller.Call(ctx, "peer", Request{Payload: testPayload{21}})
		if err == nil {
			if resp.(testReply).N != 42 {
				t.Fatalf("resp = %v", resp)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reconnected: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestTCPPeerRestartMidCall: a call is in flight when the peer process
// dies. The caller must get a transient (unreachable) failure — not a
// hang, and not an unclassifiable error — and a retry of the same call
// against the restarted peer must succeed over a fresh connection.
func TestTCPPeerRestartMidCall(t *testing.T) {
	caller, err := NewTCP("caller", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer caller.Close()
	peer1, err := NewTCP("peer", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := peer1.Addr()
	inFlight := make(chan struct{}, 1)
	block := make(chan struct{})
	peer1.Register("peer", func(_ context.Context, req Request) (any, error) {
		inFlight <- struct{}{}
		<-block // never released on peer1: the process "dies" mid-turn
		return testReply{}, nil
	})
	caller.SetPeer("peer", addr)

	errCh := make(chan error, 1)
	go func() {
		_, err := caller.Call(context.Background(), "peer", Request{Payload: testPayload{7}})
		errCh <- err
	}()
	<-inFlight // the request reached the peer and is executing

	// The peer process restarts while the call waits for its response.
	// Close tears down connections first, then waits for the parked
	// dispatch goroutine, so release it concurrently.
	closeDone := make(chan struct{})
	go func() { peer1.Close(); close(closeDone) }()
	var callErr error
	select {
	case callErr = <-errCh:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight call hung through peer restart")
	}
	close(block)
	<-closeDone
	if callErr == nil {
		t.Fatal("in-flight call reported success across peer death")
	}
	// The failure must classify as transient unreachability so the
	// runtime's retry layer knows it may retry.
	if !IsUnreachable(callErr) {
		t.Fatalf("in-flight failure %v not classified unreachable", callErr)
	}

	var peer2 *TCP
	deadline := time.Now().Add(5 * time.Second)
	for {
		peer2, err = NewTCP("peer", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	defer peer2.Close()
	if err := peer2.Register("peer", echoHandler); err != nil {
		t.Fatal(err)
	}

	// The retried call succeeds against the restarted peer.
	deadline = time.Now().Add(5 * time.Second)
	for {
		resp, err := caller.Call(context.Background(), "peer", Request{Payload: testPayload{7}})
		if err == nil {
			if resp.(testReply).N != 14 {
				t.Fatalf("resp = %v", resp)
			}
			return
		}
		if !IsUnreachable(err) {
			t.Fatalf("retry failed with non-transient error: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("retried call never succeeded: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestTCPInFlightCallsFailOnConnectionLoss: requests waiting on a
// connection that dies get errors, not hangs.
func TestTCPInFlightCallsFailOnConnectionLoss(t *testing.T) {
	caller, err := NewTCP("caller", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer caller.Close()
	peer, err := NewTCP("peer", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	peer.Register("peer", func(context.Context, Request) (any, error) {
		<-block
		return testReply{}, nil
	})
	caller.SetPeer("peer", peer.Addr())

	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func(i int) {
			_, err := caller.Call(context.Background(), "peer", Request{Payload: testPayload{i}})
			errs <- err
		}(i)
	}
	time.Sleep(100 * time.Millisecond) // let the calls get in flight
	// Close tears down the connections first, then waits for dispatch
	// goroutines — which are parked in the handler, so release them
	// concurrently.
	closeDone := make(chan struct{})
	go func() { peer.Close(); close(closeDone) }()
	for i := 0; i < 4; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Fatal("in-flight call reported success after connection loss")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("in-flight call hung after connection loss")
		}
	}
	close(block)
	select {
	case <-closeDone:
	case <-time.After(5 * time.Second):
		t.Fatal("peer.Close never finished")
	}
}
