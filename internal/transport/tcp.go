package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"aodb/internal/codec"
	"aodb/internal/telemetry"
)

// TCP is a transport for real multi-process deployments. Each endpoint
// hosts one silo, listens on a TCP address, and multiplexes concurrent
// calls to each peer over a single gob-framed connection.
type TCP struct {
	node     string
	listener net.Listener

	mu       sync.Mutex
	handler  Handler
	peers    map[string]string // node -> address
	conns    map[string]*tcpConn
	accepted map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

type tcpConn struct {
	stream  *codec.Stream
	raw     net.Conn
	nextID  atomic.Uint64
	mu      sync.Mutex
	pending map[uint64]chan *codec.Frame
	dead    error
}

// NewTCP starts a TCP endpoint for node listening on addr (host:port;
// use ":0" for an ephemeral port, then read Addr()).
func NewTCP(node, addr string) (*TCP, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	t := &TCP{
		node:     node,
		listener: ln,
		peers:    make(map[string]string),
		conns:    make(map[string]*tcpConn),
		accepted: make(map[net.Conn]struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the listen address, useful with ":0".
func (t *TCP) Addr() string { return t.listener.Addr().String() }

// SetPeer records the address of a remote silo.
func (t *TCP) SetPeer(node, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[node] = addr
}

// Register binds the local silo's inbound handler. The node name must
// match the one given to NewTCP; a TCP endpoint hosts exactly one silo.
func (t *TCP) Register(node string, h Handler) error {
	if node != t.node {
		return fmt.Errorf("transport: endpoint %q cannot host silo %q", t.node, node)
	}
	if h == nil {
		return errors.New("transport: nil handler")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.handler != nil {
		return fmt.Errorf("transport: node %q already registered", node)
	}
	t.handler = h
	return nil
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.accepted[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.serveConn(conn)
			t.mu.Lock()
			delete(t.accepted, conn)
			t.mu.Unlock()
		}()
	}
}

// serveConn handles inbound frames on an accepted connection.
func (t *TCP) serveConn(conn net.Conn) {
	defer conn.Close()
	stream := codec.NewStream(conn)
	for {
		f, err := stream.Read()
		if err != nil {
			return
		}
		switch f.Kind {
		case codec.FrameRequest, codec.FrameOneWay:
			t.wg.Add(1)
			go func(f *codec.Frame) {
				defer t.wg.Done()
				t.dispatch(stream, f)
			}(f)
		default:
			// Responses never arrive on the server side of a connection;
			// drop anything unexpected rather than crash the acceptor.
		}
	}
}

func (t *TCP) dispatch(stream *codec.Stream, f *codec.Frame) {
	t.mu.Lock()
	h := t.handler
	t.mu.Unlock()
	req := Request{
		TargetKind: f.TargetKind,
		TargetKey:  f.TargetKey,
		Method:     f.Method,
		Payload:    f.Payload,
		Sender:     f.Sender,
		Chain:      f.Chain,
		Trace: telemetry.SpanContext{
			TraceID: f.TraceID,
			SpanID:  f.ParentSpan,
			Sampled: f.TraceSampled,
		},
	}
	var resp any
	var err error
	if h == nil {
		err = fmt.Errorf("transport: node %q has no handler", t.node)
	} else {
		resp, err = h(context.Background(), req)
	}
	if f.Kind == codec.FrameOneWay {
		return
	}
	out := &codec.Frame{ID: f.ID, Kind: codec.FrameResponse, Payload: resp}
	if err != nil {
		out.Kind = codec.FrameError
		out.Err = err.Error()
		out.Payload = nil
	}
	_ = stream.Write(out)
}

// conn returns (dialing if necessary) the multiplexed connection to node.
func (t *TCP) conn(node string) (*tcpConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := t.conns[node]; ok && c.dead == nil {
		t.mu.Unlock()
		return c, nil
	}
	addr, ok := t.peers[node]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, node)
	}
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, &UnreachableError{Node: node, Err: fmt.Errorf("dial %s: %w", addr, err)}
	}
	c := &tcpConn{stream: codec.NewStream(raw), raw: raw, pending: make(map[uint64]chan *codec.Frame)}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		raw.Close()
		return nil, ErrClosed
	}
	if existing, ok := t.conns[node]; ok && existing.dead == nil {
		// Lost a dial race; use the winner.
		t.mu.Unlock()
		raw.Close()
		return existing, nil
	}
	t.conns[node] = c
	t.mu.Unlock()
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		c.readLoop()
	}()
	return c, nil
}

// readLoop routes response frames to their waiting callers.
func (c *tcpConn) readLoop() {
	for {
		f, err := c.stream.Read()
		if err != nil {
			c.mu.Lock()
			c.dead = err
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			c.raw.Close()
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[f.ID]
		if ok {
			delete(c.pending, f.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- f
		}
	}
}

// Call sends a request frame and waits for the matching response. Calls
// addressed to this endpoint's own silo bypass the network entirely.
func (t *TCP) Call(ctx context.Context, node string, req Request) (any, error) {
	if node == t.node {
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		if h == nil {
			return nil, fmt.Errorf("transport: node %q has no handler", t.node)
		}
		return h(ctx, req)
	}
	c, err := t.conn(node)
	if err != nil {
		return nil, err
	}
	id := c.nextID.Add(1)
	ch := make(chan *codec.Frame, 1)
	c.mu.Lock()
	if c.dead != nil {
		c.mu.Unlock()
		return nil, &UnreachableError{Node: node, Err: fmt.Errorf("connection failed: %w", c.dead)}
	}
	c.pending[id] = ch
	c.mu.Unlock()

	frame := &codec.Frame{
		ID:           id,
		Kind:         codec.FrameRequest,
		TargetKind:   req.TargetKind,
		TargetKey:    req.TargetKey,
		Method:       req.Method,
		Sender:       req.Sender,
		Chain:        req.Chain,
		TraceID:      req.Trace.TraceID,
		ParentSpan:   req.Trace.SpanID,
		TraceSampled: req.Trace.Sampled,
		Payload:      req.Payload,
	}
	if err := c.stream.Write(frame); err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, &UnreachableError{Node: node, Err: fmt.Errorf("write: %w", err)}
	}
	select {
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, ctx.Err()
	case f, ok := <-ch:
		if !ok {
			return nil, &UnreachableError{Node: node, Err: errors.New("connection closed mid-call")}
		}
		if f.Kind == codec.FrameError {
			return nil, &RemoteError{Node: node, Msg: f.Err}
		}
		return f.Payload, nil
	}
}

// Send delivers a one-way frame. Sends to this endpoint's own silo run
// the handler directly (asynchronously, preserving one-way semantics).
func (t *TCP) Send(ctx context.Context, node string, req Request) error {
	if node == t.node {
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		if h == nil {
			return fmt.Errorf("transport: node %q has no handler", t.node)
		}
		go func() { _, _ = h(context.WithoutCancel(ctx), req) }()
		return nil
	}
	c, err := t.conn(node)
	if err != nil {
		return err
	}
	frame := &codec.Frame{
		ID:           c.nextID.Add(1),
		Kind:         codec.FrameOneWay,
		TargetKind:   req.TargetKind,
		TargetKey:    req.TargetKey,
		Method:       req.Method,
		Sender:       req.Sender,
		Chain:        req.Chain,
		TraceID:      req.Trace.TraceID,
		ParentSpan:   req.Trace.SpanID,
		TraceSampled: req.Trace.Sampled,
		Payload:      req.Payload,
	}
	if err := c.stream.Write(frame); err != nil {
		return &UnreachableError{Node: node, Err: fmt.Errorf("write: %w", err)}
	}
	return nil
}

// Close stops the listener and all connections, waiting for in-flight
// dispatches to drain.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = map[string]*tcpConn{}
	accepted := make([]net.Conn, 0, len(t.accepted))
	for c := range t.accepted {
		accepted = append(accepted, c)
	}
	t.mu.Unlock()
	err := t.listener.Close()
	for _, c := range conns {
		c.raw.Close()
	}
	for _, c := range accepted {
		c.Close()
	}
	t.wg.Wait()
	return err
}
