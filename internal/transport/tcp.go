package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"aodb/internal/codec"
	"aodb/internal/metrics"
	"aodb/internal/telemetry"
)

// TCPOptions tunes the TCP transport's wire path. The zero value gives
// the production defaults: write coalescing on, four connection stripes
// per peer, and an inbound dispatch pool sized to GOMAXPROCS.
type TCPOptions struct {
	// Stripes is how many parallel gob streams to open per peer. Each
	// stripe has its own encoder and writer goroutine, so striping breaks
	// the single-encoder serialization on hot peer links. Frames pick a
	// stripe by target-key hash (keyless frames round-robin), keeping any
	// one actor's traffic ordered on one stream. Default
	// min(4, GOMAXPROCS): stripes exploit parallel encoders, so opening
	// more than the machine can run in parallel only fragments write
	// batches.
	Stripes int
	// NoBatching disables write coalescing and restores the pre-batching
	// behavior — one mutex-serialized encode+flush per frame on the
	// caller's goroutine. Kept as the measured baseline.
	NoBatching bool
	// MaxBatchFrames caps how many frames one flush may coalesce.
	// Default 64.
	MaxBatchFrames int
	// MaxBatchBytes flushes early once the write buffer holds this many
	// encoded bytes. Default 48 KiB.
	MaxBatchBytes int
	// WriteBuffer is the per-stream write buffer size. Default 64 KiB.
	WriteBuffer int
	// SendQueue bounds each connection's writer queue; a full queue
	// applies backpressure to callers (bounded by their context).
	// Default 256.
	SendQueue int
	// DispatchWorkers sizes the inbound dispatch worker pool. A frame is
	// queued only after claiming an idle worker's slot and spills to a
	// spawned goroutine otherwise, so a slow handler can never deadlock
	// request/response cycles. Default max(4*GOMAXPROCS, MaxBatchFrames):
	// at least one full coalesced batch of fast handlers runs on warm
	// pool stacks instead of paying a goroutine spawn per frame.
	DispatchWorkers int
	// Metrics receives transport instrumentation (flush sizes and
	// latency, send-queue depth, lost replies, evictions); nil allocates
	// a private registry.
	Metrics *metrics.Registry
	// StampHLC, when set, mints a hybrid-logical-clock stamp for frames
	// leaving this process without one (req.HLC == 0). Stamping at the
	// wire boundary keeps in-process deliveries free of clock work —
	// their events already share one HLC source — while every frame that
	// actually crosses a machine carries a causal timestamp. Return 0 to
	// skip stamping (recorder disabled).
	StampHLC func() uint64
}

func (o *TCPOptions) fill() {
	if o.Stripes <= 0 {
		o.Stripes = runtime.GOMAXPROCS(0)
		if o.Stripes > 4 {
			o.Stripes = 4
		}
	}
	if o.MaxBatchFrames <= 0 {
		o.MaxBatchFrames = 64
	}
	if o.MaxBatchBytes <= 0 {
		o.MaxBatchBytes = 48 << 10
	}
	if o.WriteBuffer <= 0 {
		o.WriteBuffer = 64 << 10
	}
	if o.SendQueue <= 0 {
		o.SendQueue = 256
	}
	if o.DispatchWorkers <= 0 {
		o.DispatchWorkers = 4 * runtime.GOMAXPROCS(0)
		if o.DispatchWorkers < o.MaxBatchFrames {
			o.DispatchWorkers = o.MaxBatchFrames
		}
	}
}

// TCP is a transport for real multi-process deployments. Each endpoint
// hosts one silo, listens on a TCP address, and multiplexes concurrent
// calls to each peer over a small set of striped gob-framed connections.
// Outbound frames are write-coalesced (see TCPOptions); inbound frames
// run on a bounded dispatch pool with goroutine spill.
type TCP struct {
	node     string
	listener net.Listener
	opts     TCPOptions
	m        *tcpMetrics

	// dispatchq feeds the worker pool. A frame is queued only after
	// claiming a unit of idleWorkers (CAS), which proves a worker is idle
	// and will pick the frame up without first blocking in a handler — so
	// no inbound frame is ever parked behind blocked workers (which could
	// deadlock request/response cycles). Claim failure spills to a fresh
	// goroutine. The buffer (cap = pool size) exists so a burst of reads
	// can claim many idle workers before any of them is scheduled.
	dispatchq   chan inboundFrame
	idleWorkers atomic.Int32
	stopc       chan struct{}

	rr atomic.Uint64 // round-robin stripe counter for keyless frames

	// handler is read on every inbound frame; atomic so dispatch never
	// takes t.mu on the hot path. Registration still serializes on t.mu.
	handler atomic.Value // Handler

	mu       sync.Mutex
	peers    map[string]string     // node -> address
	conns    map[string][]*tcpConn // node -> stripe -> conn (nil = undialed/evicted)
	accepted map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

func (t *TCP) loadHandler() Handler {
	h, _ := t.handler.Load().(Handler)
	return h
}

type inboundFrame struct {
	w *frameWriter
	f *codec.Frame
}

// tcpConn is one dialed stripe to a peer: a frameWriter for the send
// side plus the pending-call table its readLoop resolves.
type tcpConn struct {
	*frameWriter
	t      *TCP
	stripe int
	nextID atomic.Uint64

	pmu     sync.Mutex
	pending map[uint64]chan *codec.Frame
	pdead   bool
}

// respChans recycles the per-call response channels. A channel may only
// be pooled after its call received the response: on the cancellation
// path a late response can still land in the (buffered) channel, and
// pooling it then would deliver a stale response to an unrelated call.
var respChans = sync.Pool{New: func() any { return make(chan *codec.Frame, 1) }}

// NewTCP starts a TCP endpoint for node listening on addr (host:port;
// use ":0" for an ephemeral port, then read Addr()) with default options.
func NewTCP(node, addr string) (*TCP, error) {
	return NewTCPWithOptions(node, addr, TCPOptions{})
}

// NewTCPWithOptions starts a TCP endpoint with explicit wire-path tuning.
func NewTCPWithOptions(node, addr string, opts TCPOptions) (*TCP, error) {
	opts.fill()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	t := &TCP{
		node:      node,
		listener:  ln,
		opts:      opts,
		m:         newTCPMetrics(opts.Metrics),
		dispatchq: make(chan inboundFrame, opts.DispatchWorkers),
		stopc:     make(chan struct{}),
		peers:     make(map[string]string),
		conns:     make(map[string][]*tcpConn),
		accepted:  make(map[net.Conn]struct{}),
	}
	for i := 0; i < opts.DispatchWorkers; i++ {
		t.wg.Add(1)
		go t.dispatchWorker()
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the listen address, useful with ":0".
func (t *TCP) Addr() string { return t.listener.Addr().String() }

// SetPeer records the address of a remote silo.
func (t *TCP) SetPeer(node, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[node] = addr
}

// Register binds the local silo's inbound handler. The node name must
// match the one given to NewTCP; a TCP endpoint hosts exactly one silo.
func (t *TCP) Register(node string, h Handler) error {
	if node != t.node {
		return fmt.Errorf("transport: endpoint %q cannot host silo %q", t.node, node)
	}
	if h == nil {
		return errors.New("transport: nil handler")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.loadHandler() != nil {
		return fmt.Errorf("transport: node %q already registered", node)
	}
	t.handler.Store(h)
	return nil
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.accepted[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.serveConn(conn)
			t.mu.Lock()
			delete(t.accepted, conn)
			t.mu.Unlock()
		}()
	}
}

// newStream builds the stream flavor the configured write path needs.
func (t *TCP) newStream(conn net.Conn) *codec.Stream {
	if t.opts.NoBatching {
		return codec.NewStream(conn)
	}
	return codec.NewBufferedStream(conn, t.opts.WriteBuffer)
}

func (t *TCP) newWriter(peer string, raw net.Conn, stream *codec.Stream) *frameWriter {
	return &frameWriter{
		peer:      peer,
		raw:       raw,
		stream:    stream,
		m:         t.m,
		noBatch:   t.opts.NoBatching,
		maxFrames: t.opts.MaxBatchFrames,
		maxBytes:  t.opts.MaxBatchBytes,
		q:         make(chan *sendReq, t.opts.SendQueue),
		closed:    make(chan struct{}),
	}
}

// dispatchWorker is one pool worker. It advertises idleness before each
// receive; the matching decrement happens in claimWorker on the frame's
// producer side, so idleWorkers counts exactly the workers that will
// reach a receive without first blocking in a handler.
func (t *TCP) dispatchWorker() {
	defer t.wg.Done()
	for {
		t.idleWorkers.Add(1)
		// Non-blocking receive first: under load a claimed frame is
		// usually already buffered, and skipping selectgo keeps the
		// dispatch hot path cheap.
		select {
		case in := <-t.dispatchq:
			t.dispatch(in.w, in.f)
			in.w.active.Add(-1)
			continue
		default:
		}
		select {
		case in := <-t.dispatchq:
			t.dispatch(in.w, in.f)
			in.w.active.Add(-1)
		case <-t.stopc:
			return
		}
	}
}

// claimWorker reserves one idle dispatch worker, or reports that none is
// free (the caller spawns instead).
func (t *TCP) claimWorker() bool {
	for {
		n := t.idleWorkers.Load()
		if n <= 0 {
			return false
		}
		if t.idleWorkers.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// serveConn handles inbound frames on an accepted connection. Responses
// go back through a frameWriter so replies coalesce too.
func (t *TCP) serveConn(conn net.Conn) {
	defer conn.Close()
	stream := t.newStream(conn)
	w := t.newWriter("", conn, stream)
	if !t.opts.NoBatching {
		t.wg.Add(1)
		go w.run(&t.wg)
	}
	defer w.fail(errConnClosed)
	for {
		f, err := stream.Read()
		if err != nil {
			return
		}
		switch f.Kind {
		case codec.FrameRequest, codec.FrameOneWay:
			in := inboundFrame{w: w, f: f}
			// Count the frame against the reply writer before anything is
			// scheduled: a burst read off the wire raises active to the
			// burst size, so the replies those dispatches produce coalesce
			// even when the dispatches themselves run one at a time.
			w.active.Add(1)
			if t.claimWorker() {
				t.m.dispatchPool.Inc()
				t.dispatchq <- in
			} else {
				t.m.dispatchGo.Inc()
				t.wg.Add(1)
				go func() {
					defer t.wg.Done()
					t.dispatch(in.w, in.f)
					in.w.active.Add(-1)
				}()
			}
		default:
			// Responses never arrive on the server side of a connection;
			// drop anything unexpected rather than crash the acceptor.
			codec.PutFrame(f)
		}
	}
}

func (t *TCP) dispatch(w *frameWriter, f *codec.Frame) {
	h := t.loadHandler()
	req := Request{
		TargetKind: f.TargetKind,
		TargetKey:  f.TargetKey,
		Method:     f.Method,
		Payload:    f.Payload,
		Sender:     f.Sender,
		Chain:      f.Chain,
		Trace: telemetry.SpanContext{
			TraceID: f.TraceID,
			SpanID:  f.ParentSpan,
			Sampled: f.TraceSampled,
		},
		HLC: f.HLC,
	}
	id, kind := f.ID, f.Kind
	// The request header is done: req holds its own copies of the payload
	// and chain references, which outlive the frame's return to the pool.
	codec.PutFrame(f)
	var resp any
	var err error
	if h == nil {
		err = fmt.Errorf("transport: node %q has no handler", t.node)
	} else {
		resp, err = h(context.Background(), req)
	}
	if kind == codec.FrameOneWay {
		return
	}
	out := codec.GetFrame()
	out.ID = id
	out.Kind = codec.FrameResponse
	out.Payload = resp
	if err != nil {
		out.Kind = codec.FrameError
		out.Err = err.Error()
		out.Payload = nil
		// Wrong-silo answers carry their redirect target as a frame field
		// so the caller can re-route instead of blind-retrying.
		var r interface{ RedirectTarget() string }
		if errors.As(err, &r) {
			out.Redirect = r.RedirectTarget()
		}
	}
	// A reply that cannot be written is a response the peer will never
	// see. The writer marks the stream dead (closing the connection so
	// the peer's pending calls fail over) and counts the loss in
	// transport.reply_write_errors; enqueue owns the frame either way.
	_ = w.enqueue(context.Background(), &sendReq{frame: out, reply: true})
}

// stripeFor maps a target key onto a connection stripe. Keyed frames
// hash so one actor's traffic stays ordered on one stream; keyless
// frames round-robin.
func (t *TCP) stripeFor(key string) int {
	n := t.opts.Stripes
	if n == 1 {
		return 0
	}
	if key == "" {
		return int(t.rr.Add(1) % uint64(n))
	}
	// FNV-1a plus a murmur-style finalizer: plain FNV clusters similar
	// keys when reduced modulo a small stripe count.
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(n))
}

// conn returns (dialing if necessary) the striped connection to node for
// the given target key.
func (t *TCP) conn(node, key string) (*tcpConn, error) {
	stripe := t.stripeFor(key)
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	addr, known := t.peers[node]
	if !known {
		t.mu.Unlock()
		// Unreachability, same as Local: under gossip membership a peer
		// can be addressed (via a redirect or a fresh view) moments
		// before its name=addr mapping arrives, so the caller must be
		// free to retry.
		return nil, &UnreachableError{Node: node, Err: fmt.Errorf("%w: %q", ErrUnknownNode, node)}
	}
	ss := t.conns[node]
	if ss == nil {
		ss = make([]*tcpConn, t.opts.Stripes)
		t.conns[node] = ss
	}
	if c := ss[stripe]; c != nil {
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, &UnreachableError{Node: node, Err: fmt.Errorf("dial %s: %w", addr, err)}
	}
	c := &tcpConn{
		frameWriter: t.newWriter(node, raw, t.newStream(raw)),
		t:           t,
		stripe:      stripe,
		pending:     make(map[uint64]chan *codec.Frame),
	}
	// A dead connection evicts itself immediately and fails its pending
	// calls, so the next call redials instead of hitting the corpse.
	c.onDead = func(error) {
		t.evictConn(c)
		c.failPending()
	}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		raw.Close()
		return nil, ErrClosed
	}
	if existing := t.conns[node][stripe]; existing != nil {
		// Lost a dial race; use the winner.
		t.mu.Unlock()
		raw.Close()
		return existing, nil
	}
	t.conns[node][stripe] = c
	// Goroutine registration happens under the same lock that guards
	// closed, so Close's Wait can never race a late Add.
	goroutines := 1 // readLoop
	if !t.opts.NoBatching {
		goroutines++ // writer
	}
	t.wg.Add(goroutines)
	t.mu.Unlock()
	if !t.opts.NoBatching {
		go c.run(&t.wg)
	}
	go func() {
		defer t.wg.Done()
		c.readLoop()
	}()
	return c, nil
}

// evictConn drops a dead connection from the stripe table so the next
// call redials immediately.
func (t *TCP) evictConn(c *tcpConn) {
	t.mu.Lock()
	if ss := t.conns[c.peer]; c.stripe < len(ss) && ss[c.stripe] == c {
		ss[c.stripe] = nil
		t.m.evictions.Inc()
	}
	t.mu.Unlock()
}

// failPending closes every waiting caller's channel: the connection died
// and their responses will never arrive.
func (c *tcpConn) failPending() {
	c.pmu.Lock()
	c.pdead = true
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	c.pmu.Unlock()
}

// readLoop routes response frames to their waiting callers.
func (c *tcpConn) readLoop() {
	for {
		f, err := c.stream.Read()
		if err != nil {
			c.fail(err)
			return
		}
		c.pmu.Lock()
		ch, ok := c.pending[f.ID]
		if ok {
			delete(c.pending, f.ID)
		}
		c.pmu.Unlock()
		if ok {
			ch <- f
		} else {
			// Late response: the caller gave up (context cancelled).
			codec.PutFrame(f)
		}
	}
}

// requestFrame builds a pooled frame for req. The caller owns the frame
// until it hands it to a writer.
func requestFrame(id uint64, kind codec.FrameKind, req Request) *codec.Frame {
	f := codec.GetFrame()
	f.ID = id
	f.Kind = kind
	f.TargetKind = req.TargetKind
	f.TargetKey = req.TargetKey
	f.Method = req.Method
	f.Sender = req.Sender
	f.Chain = req.Chain
	f.TraceID = req.Trace.TraceID
	f.ParentSpan = req.Trace.SpanID
	f.TraceSampled = req.Trace.Sampled
	f.HLC = req.HLC
	f.Payload = req.Payload
	return f
}

// Call sends a request frame and waits for the matching response. Calls
// addressed to this endpoint's own silo bypass the network entirely.
func (t *TCP) Call(ctx context.Context, node string, req Request) (any, error) {
	if node == t.node {
		h := t.loadHandler()
		if h == nil {
			return nil, fmt.Errorf("transport: node %q has no handler", t.node)
		}
		return h(ctx, req)
	}
	c, err := t.conn(node, req.TargetKey)
	if err != nil {
		return nil, err
	}
	if req.HLC == 0 && t.opts.StampHLC != nil {
		req.HLC = t.opts.StampHLC()
	}
	// Stay counted for the whole round trip (not just the write): another
	// caller arriving while we await our response is exactly the signal
	// that frames are worth coalescing.
	c.active.Add(1)
	defer c.active.Add(-1)
	id := c.nextID.Add(1)
	ch := respChans.Get().(chan *codec.Frame)
	c.pmu.Lock()
	if c.pdead {
		c.pmu.Unlock()
		return nil, &UnreachableError{Node: node, Err: fmt.Errorf("connection failed: %w", c.deadErr())}
	}
	c.pending[id] = ch
	c.pmu.Unlock()

	r := &sendReq{frame: requestFrame(id, codec.FrameRequest, req), span: telemetry.SpanFrom(ctx)}
	if err := c.enqueue(ctx, r); err != nil {
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(err, ctxErr) {
			return nil, err
		}
		return nil, &UnreachableError{Node: node, Err: fmt.Errorf("write: %w", err)}
	}
	var f *codec.Frame
	var ok bool
	if done := ctx.Done(); done == nil {
		// Non-cancellable context: a plain receive skips selectgo.
		f, ok = <-ch
	} else {
		select {
		case <-done:
			c.pmu.Lock()
			delete(c.pending, id)
			c.pmu.Unlock()
			// ch is not pooled: readLoop may have claimed the pending entry
			// already and still deliver into it.
			return nil, ctx.Err()
		case f, ok = <-ch:
		}
	}
	if !ok {
		// Closed channel (connection death); also not poolable.
		return nil, &UnreachableError{Node: node, Err: errors.New("connection closed mid-call")}
	}
	respChans.Put(ch)
	if f.Kind == codec.FrameError {
		msg, redirect := f.Err, f.Redirect
		codec.PutFrame(f)
		if redirect != "" {
			return nil, &RedirectError{Node: node, Target: redirect, Msg: msg}
		}
		return nil, &RemoteError{Node: node, Msg: msg}
	}
	payload := f.Payload
	codec.PutFrame(f)
	return payload, nil
}

// Send delivers a one-way frame and waits only for the write to reach
// the wire (one flush away under batching), so write failures surface as
// UnreachableError. Sends to this endpoint's own silo run the handler
// directly (asynchronously, preserving one-way semantics); those handler
// goroutines are tracked and drained by Close.
func (t *TCP) Send(ctx context.Context, node string, req Request) error {
	if node == t.node {
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			return ErrClosed
		}
		h := t.loadHandler()
		if h == nil {
			t.mu.Unlock()
			return fmt.Errorf("transport: node %q has no handler", t.node)
		}
		t.wg.Add(1)
		t.mu.Unlock()
		go func() {
			defer t.wg.Done()
			_, _ = h(context.WithoutCancel(ctx), req)
		}()
		return nil
	}
	c, err := t.conn(node, req.TargetKey)
	if err != nil {
		return err
	}
	if req.HLC == 0 && t.opts.StampHLC != nil {
		req.HLC = t.opts.StampHLC()
	}
	c.active.Add(1)
	defer c.active.Add(-1)
	r := &sendReq{
		frame: requestFrame(c.nextID.Add(1), codec.FrameOneWay, req),
		done:  make(chan error, 1),
		span:  telemetry.SpanFrom(ctx),
	}
	if err := c.enqueue(ctx, r); err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(err, ctxErr) {
			return err
		}
		return &UnreachableError{Node: node, Err: fmt.Errorf("write: %w", err)}
	}
	var werr error
	if done := ctx.Done(); done == nil {
		werr = <-r.done
	} else {
		select {
		case werr = <-r.done:
		case <-done:
			// The frame is queued and may still go out; one-way semantics
			// allow either outcome.
			return ctx.Err()
		}
	}
	if werr != nil {
		return &UnreachableError{Node: node, Err: fmt.Errorf("write: %w", werr)}
	}
	return nil
}

// Close stops the listener and all connections, waiting for in-flight
// dispatches (including local one-way handler goroutines) to drain.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = map[string][]*tcpConn{}
	accepted := make([]net.Conn, 0, len(t.accepted))
	for c := range t.accepted {
		accepted = append(accepted, c)
	}
	t.mu.Unlock()
	err := t.listener.Close()
	for _, ss := range conns {
		for _, c := range ss {
			if c != nil {
				c.fail(ErrClosed)
			}
		}
	}
	for _, c := range accepted {
		c.Close()
	}
	close(t.stopc)
	t.wg.Wait()
	return err
}
