// The fault-equivalence test lives in an external test package because
// internal/faults imports internal/transport; importing faults from an
// in-package test would be an import cycle.
package transport_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"aodb/internal/codec"
	"aodb/internal/faults"
	"aodb/internal/transport"
)

type eqPayload struct{ N int }
type eqReply struct{ N int }

func init() {
	codec.Register(eqPayload{})
	codec.Register(eqReply{})
}

// TestTCPBatchingFaultEquivalence: the batched writer must be
// observationally equivalent to the NoBatching baseline under the fault
// injector — same seed, same sequential request series, same per-call
// outcome classification.
func TestTCPBatchingFaultEquivalence(t *testing.T) {
	outcomes := func(opts transport.TCPOptions) []string {
		a, err := transport.NewTCPWithOptions("silo-a", "127.0.0.1:0", opts)
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		b, err := transport.NewTCPWithOptions("silo-b", "127.0.0.1:0", opts)
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		a.SetPeer("silo-b", b.Addr())
		if err := b.Register("silo-b", func(_ context.Context, req transport.Request) (any, error) {
			p, ok := req.Payload.(eqPayload)
			if !ok {
				return nil, fmt.Errorf("bad payload %T", req.Payload)
			}
			return eqReply{N: p.N * 2}, nil
		}); err != nil {
			t.Fatal(err)
		}
		inj := faults.New(faults.Config{Seed: 42, Drop: 0.15, Delay: 0.1, MaxDelay: 2 * time.Millisecond, Dup: 0.05})
		ft := inj.WrapTransport(a)
		var out []string
		ctx := context.Background()
		// Sequential on purpose: the injector's seeded decision sequence
		// is per-call-order, so both modes see identical fault schedules.
		for i := 0; i < 200; i++ {
			resp, err := ft.Call(ctx, "silo-b", transport.Request{TargetKey: fmt.Sprintf("k%d", i%7), Payload: eqPayload{i}})
			switch {
			case err == nil && resp.(eqReply).N == 2*i:
				out = append(out, "ok")
			case err == nil:
				out = append(out, fmt.Sprintf("bad-resp:%v", resp))
			case transport.IsUnreachable(err):
				out = append(out, "unreachable")
			default:
				out = append(out, "err:"+err.Error())
			}
			if i%3 == 0 {
				if err := ft.Send(ctx, "silo-b", transport.Request{TargetKey: "one-way", Payload: eqPayload{i}}); err != nil {
					out = append(out, "send-err")
				}
			}
		}
		return out
	}
	batched := outcomes(transport.TCPOptions{})
	baseline := outcomes(transport.TCPOptions{NoBatching: true})
	if len(batched) != len(baseline) {
		t.Fatalf("outcome counts differ: %d vs %d", len(batched), len(baseline))
	}
	for i := range batched {
		if batched[i] != baseline[i] {
			t.Fatalf("outcome %d diverged: batched=%q baseline=%q", i, batched[i], baseline[i])
		}
	}
}
