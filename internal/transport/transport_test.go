package transport

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aodb/internal/codec"
	"aodb/internal/netsim"
)

func init() {
	codec.Register(testPayload{})
	codec.Register(testReply{})
}

type testPayload struct{ N int }
type testReply struct{ N int }

func echoHandler(_ context.Context, req Request) (any, error) {
	p, ok := req.Payload.(testPayload)
	if !ok {
		return nil, fmt.Errorf("bad payload %T", req.Payload)
	}
	return testReply{N: p.N * 2}, nil
}

func TestLocalCallRoundTrip(t *testing.T) {
	l := NewLocal(nil, nil)
	defer l.Close()
	if err := l.Register("silo-1", echoHandler); err != nil {
		t.Fatal(err)
	}
	resp, err := l.Call(context.Background(), "silo-1", Request{Payload: testPayload{21}})
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := resp.(testReply); !ok || r.N != 42 {
		t.Fatalf("resp = %#v, want testReply{42}", resp)
	}
}

func TestLocalUnknownNode(t *testing.T) {
	l := NewLocal(nil, nil)
	defer l.Close()
	if _, err := l.Call(context.Background(), "ghost", Request{}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
}

func TestLocalDuplicateRegister(t *testing.T) {
	l := NewLocal(nil, nil)
	defer l.Close()
	if err := l.Register("s", echoHandler); err != nil {
		t.Fatal(err)
	}
	if err := l.Register("s", echoHandler); err == nil {
		t.Fatal("duplicate register accepted")
	}
}

func TestLocalNilHandlerRejected(t *testing.T) {
	l := NewLocal(nil, nil)
	defer l.Close()
	if err := l.Register("s", nil); err == nil {
		t.Fatal("nil handler accepted")
	}
}

func TestLocalRemoteLatencyApplied(t *testing.T) {
	model := netsim.NewModel(1, netsim.Loopback, netsim.Profile{Base: 5 * time.Millisecond})
	l := NewLocal(model, nil)
	defer l.Close()
	l.Register("remote", echoHandler)

	start := time.Now()
	if _, err := l.Call(context.Background(), "remote", Request{Sender: "local", Payload: testPayload{1}}); err != nil {
		t.Fatal(err)
	}
	// Request + response hops: >= 10ms.
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("remote call took %v, want >= 10ms of simulated latency", elapsed)
	}

	start = time.Now()
	l.Register("local", echoHandler)
	if _, err := l.Call(context.Background(), "local", Request{Sender: "local", Payload: testPayload{1}}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Millisecond {
		t.Fatalf("same-silo call took %v, want ~0", elapsed)
	}
}

func TestLocalSendIsAsync(t *testing.T) {
	l := NewLocal(nil, nil)
	defer l.Close()
	var hits atomic.Int32
	done := make(chan struct{})
	l.Register("s", func(context.Context, Request) (any, error) {
		hits.Add(1)
		close(done)
		return nil, nil
	})
	if err := l.Send(context.Background(), "s", Request{}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("one-way send never delivered")
	}
	if hits.Load() != 1 {
		t.Fatalf("handler hits = %d", hits.Load())
	}
}

func TestLocalClosedRejectsCalls(t *testing.T) {
	l := NewLocal(nil, nil)
	l.Register("s", echoHandler)
	l.Close()
	if _, err := l.Call(context.Background(), "s", Request{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err after close = %v, want ErrClosed", err)
	}
}

func TestLocalCallCancelledDuringDelay(t *testing.T) {
	model := netsim.NewModel(1, netsim.Loopback, netsim.Profile{Base: time.Hour})
	l := NewLocal(model, nil)
	defer l.Close()
	l.Register("far", echoHandler)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := l.Call(ctx, "far", Request{Sender: "here", Payload: testPayload{1}}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func newTCPPair(t *testing.T) (*TCP, *TCP) {
	t.Helper()
	a, err := NewTCP("silo-a", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCP("silo-b", "127.0.0.1:0")
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	a.SetPeer("silo-b", b.Addr())
	b.SetPeer("silo-a", a.Addr())
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestTCPCallRoundTrip(t *testing.T) {
	a, b := newTCPPair(t)
	if err := b.Register("silo-b", echoHandler); err != nil {
		t.Fatal(err)
	}
	resp, err := a.Call(context.Background(), "silo-b", Request{Payload: testPayload{5}, Sender: "silo-a"})
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := resp.(testReply); !ok || r.N != 10 {
		t.Fatalf("resp = %#v", resp)
	}
}

func TestTCPConcurrentCallsMultiplex(t *testing.T) {
	a, b := newTCPPair(t)
	b.Register("silo-b", func(_ context.Context, req Request) (any, error) {
		p := req.Payload.(testPayload)
		time.Sleep(time.Duration(p.N%5) * time.Millisecond)
		return testReply{N: p.N}, nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := a.Call(context.Background(), "silo-b", Request{Payload: testPayload{i}})
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			if resp.(testReply).N != i {
				t.Errorf("call %d got %v: responses crossed", i, resp)
			}
		}(i)
	}
	wg.Wait()
}

func TestTCPRemoteErrorPropagates(t *testing.T) {
	a, b := newTCPPair(t)
	b.Register("silo-b", func(context.Context, Request) (any, error) {
		return nil, errors.New("boom in actor")
	})
	_, err := a.Call(context.Background(), "silo-b", Request{Payload: testPayload{1}})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if !strings.Contains(re.Msg, "boom in actor") || re.Node != "silo-b" {
		t.Fatalf("remote error = %+v", re)
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	a, _ := newTCPPair(t)
	if _, err := a.Call(context.Background(), "silo-z", Request{}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v, want ErrUnknownNode", err)
	}
}

func TestTCPRegisterWrongNode(t *testing.T) {
	a, _ := newTCPPair(t)
	if err := a.Register("other", echoHandler); err == nil {
		t.Fatal("registering foreign silo name accepted")
	}
}

func TestTCPOneWaySend(t *testing.T) {
	a, b := newTCPPair(t)
	got := make(chan int, 1)
	b.Register("silo-b", func(_ context.Context, req Request) (any, error) {
		got <- req.Payload.(testPayload).N
		return nil, nil
	})
	if err := a.Send(context.Background(), "silo-b", Request{Payload: testPayload{7}}); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-got:
		if n != 7 {
			t.Fatalf("payload = %d", n)
		}
	case <-time.After(time.Second):
		t.Fatal("one-way frame never arrived")
	}
}

func TestTCPCallAfterPeerClosed(t *testing.T) {
	a, b := newTCPPair(t)
	b.Register("silo-b", echoHandler)
	if _, err := a.Call(context.Background(), "silo-b", Request{Payload: testPayload{1}}); err != nil {
		t.Fatal(err)
	}
	b.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := a.Call(ctx, "silo-b", Request{Payload: testPayload{1}}); err == nil {
		t.Fatal("call to closed peer succeeded")
	}
}

func TestTCPCallContextTimeout(t *testing.T) {
	a, b := newTCPPair(t)
	b.Register("silo-b", func(ctx context.Context, _ Request) (any, error) {
		time.Sleep(500 * time.Millisecond)
		return testReply{}, nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := a.Call(ctx, "silo-b", Request{Payload: testPayload{1}}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}
