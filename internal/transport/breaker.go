package transport

import (
	"context"
	"fmt"
	"sync"
	"time"

	"aodb/internal/clock"
	"aodb/internal/telemetry"
)

// BreakerOptions tunes the per-target circuit breakers.
type BreakerOptions struct {
	// FailureThreshold is how many consecutive unreachable failures open
	// the circuit to a node (default 5).
	FailureThreshold int
	// Cooldown is how long an open circuit rejects calls before letting a
	// single probe through (default 1 second).
	Cooldown time.Duration
	// Clock defaults to the real clock.
	Clock clock.Clock
	// OnTrip, when set, is called (outside the breaker lock) each time a
	// node's circuit transitions to open, with the failure streak that
	// tripped it. The flight journal hooks here; nil costs nothing.
	OnTrip func(node string, failures int)
}

// Breaker state machine per target node.
const (
	stateClosed = iota
	stateOpen
	stateHalfOpen
)

type breakerNode struct {
	state    int
	failures int
	trips    int64
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

// Breaker wraps a Transport with per-target-node circuit breakers. A node
// that keeps failing at the transport level (dead connections, failed
// dials, deregistration) trips its breaker: further calls fail fast with
// ErrCircuitOpen instead of hammering the dead node, which lets the
// runtime's retry layer re-place actors on live silos. After Cooldown the
// breaker goes half-open and admits one probe; a successful probe closes
// the circuit, a failed one re-opens it.
//
// Only unreachable failures (IsUnreachable) count: errors returned by the
// remote handler prove the node is alive and reset the breaker.
type Breaker struct {
	inner Transport
	opts  BreakerOptions

	mu    sync.Mutex
	nodes map[string]*breakerNode
	trips int64
}

// NewBreaker wraps inner with circuit breakers.
func NewBreaker(inner Transport, opts BreakerOptions) *Breaker {
	if opts.FailureThreshold <= 0 {
		opts.FailureThreshold = 5
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = time.Second
	}
	if opts.Clock == nil {
		opts.Clock = clock.Real()
	}
	return &Breaker{inner: inner, opts: opts, nodes: make(map[string]*breakerNode)}
}

// Register passes through to the inner transport and resets the node's
// breaker: a (re-)registered node is known alive, so a silo restarting
// after a crash becomes routable immediately instead of after a cooldown.
func (b *Breaker) Register(node string, h Handler) error {
	if err := b.inner.Register(node, h); err != nil {
		return err
	}
	b.mu.Lock()
	delete(b.nodes, node)
	b.mu.Unlock()
	return nil
}

// Deregister forwards to the inner transport when it supports removal.
func (b *Breaker) Deregister(node string) {
	if d, ok := b.inner.(Deregisterer); ok {
		d.Deregister(node)
	}
}

// allow decides whether a call to node may proceed right now.
func (b *Breaker) allow(node string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	n, ok := b.nodes[node]
	if !ok {
		return nil // closed by default; no entry allocated until a failure
	}
	switch n.state {
	case stateClosed:
		return nil
	case stateOpen:
		if b.opts.Clock.Since(n.openedAt) < b.opts.Cooldown {
			return fmt.Errorf("%w: %q", ErrCircuitOpen, node)
		}
		n.state = stateHalfOpen
		n.probing = true
		return nil // this caller is the probe
	default: // half-open
		if n.probing {
			return fmt.Errorf("%w: %q (probe in flight)", ErrCircuitOpen, node)
		}
		n.probing = true
		return nil
	}
}

// record updates node's breaker with a call outcome.
func (b *Breaker) record(node string, err error) {
	unreachable := err != nil && IsUnreachable(err)
	tripped := 0
	b.mu.Lock()
	n, ok := b.nodes[node]
	if !ok {
		if !unreachable {
			b.mu.Unlock()
			return // stay closed, allocate nothing on the happy path
		}
		n = &breakerNode{}
		b.nodes[node] = n
	}
	if !unreachable {
		// Any response from the node — success or a handler error —
		// proves it alive.
		n.state = stateClosed
		n.failures = 0
		n.probing = false
		b.mu.Unlock()
		return
	}
	n.failures++
	n.probing = false
	if n.state == stateHalfOpen || n.failures >= b.opts.FailureThreshold {
		if n.state != stateOpen {
			b.trips++
			n.trips++
			tripped = n.failures
		}
		n.state = stateOpen
		n.openedAt = b.opts.Clock.Now()
	}
	b.mu.Unlock()
	if tripped > 0 && b.opts.OnTrip != nil {
		b.opts.OnTrip(node, tripped)
	}
}

// Trips returns how many times any circuit has transitioned to open, for
// chaos-run reporting.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Call delivers req through the node's breaker.
func (b *Breaker) Call(ctx context.Context, node string, req Request) (any, error) {
	if err := b.allow(node); err != nil {
		return nil, err
	}
	resp, err := b.inner.Call(ctx, node, req)
	b.record(node, err)
	return resp, err
}

// Send delivers a one-way request through the node's breaker. Delivery
// errors the inner transport reports synchronously feed the breaker.
func (b *Breaker) Send(ctx context.Context, node string, req Request) error {
	if err := b.allow(node); err != nil {
		return err
	}
	err := b.inner.Send(ctx, node, req)
	b.record(node, err)
	return err
}

// States reports every tracked node's breaker state, failure streak, and
// trip count for operator introspection (the telemetry /metrics surface
// exports these as aodb_breaker_* gauges). Nodes that never failed have
// no entry: they are closed by construction.
func (b *Breaker) States() []telemetry.BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]telemetry.BreakerState, 0, len(b.nodes))
	for node, n := range b.nodes {
		state := "closed"
		switch n.state {
		case stateOpen:
			// An open breaker past its cooldown admits the next call as
			// a probe; report the state the next caller will see.
			if b.opts.Clock.Since(n.openedAt) < b.opts.Cooldown {
				state = "open"
			} else {
				state = "half-open"
			}
		case stateHalfOpen:
			state = "half-open"
		}
		out = append(out, telemetry.BreakerState{
			Node:     node,
			State:    state,
			Failures: n.failures,
			Trips:    n.trips,
		})
	}
	return out
}

// Open reports whether node's circuit is currently open (rejecting).
// Useful as a placement-view filter so new activations avoid dead silos.
func (b *Breaker) Open(node string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	n, ok := b.nodes[node]
	if !ok || n.state != stateOpen {
		return false
	}
	return b.opts.Clock.Since(n.openedAt) < b.opts.Cooldown
}

// Close shuts down the inner transport.
func (b *Breaker) Close() error { return b.inner.Close() }
