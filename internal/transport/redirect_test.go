package transport

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

type redirectingError struct{ winner string }

func (e *redirectingError) Error() string          { return "wrong silo: try " + e.winner }
func (e *redirectingError) RedirectTarget() string { return e.winner }

// TestTCPRedirectSurvivesWire: a handler error carrying a redirect
// target (core's wrong-silo error) must come back to the caller as a
// typed RedirectError — gob flattens error values to strings, so the
// target rides in its own frame field.
func TestTCPRedirectSurvivesWire(t *testing.T) {
	caller, err := NewTCP("caller", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer caller.Close()
	peer, err := NewTCP("peer", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	if err := peer.Register("peer", func(ctx context.Context, req Request) (any, error) {
		if req.Payload.(testPayload).N == 1 {
			return nil, fmt.Errorf("resolve: %w", &redirectingError{winner: "silo-9"})
		}
		return nil, errors.New("boom")
	}); err != nil {
		t.Fatal(err)
	}
	caller.SetPeer("peer", peer.Addr())

	_, err = caller.Call(context.Background(), "peer", Request{Payload: testPayload{1}})
	var r *RedirectError
	if !errors.As(err, &r) {
		t.Fatalf("err = %T %v, want *RedirectError", err, err)
	}
	if r.Target != "silo-9" {
		t.Fatalf("redirect target = %q, want silo-9", r.Target)
	}
	if !r.TransientError() {
		t.Fatal("redirects must be retryable")
	}
	// Plain handler errors still surface as RemoteError, not redirects.
	_, err = caller.Call(context.Background(), "peer", Request{Payload: testPayload{2}})
	if errors.As(err, &r) {
		t.Fatalf("plain error decoded as redirect: %v", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T %v, want *RemoteError", err, err)
	}
}
