package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aodb/internal/codec"
	"aodb/internal/metrics"
)

// newTCPPairOpts builds a connected a->b pair with explicit options on
// both ends.
func newTCPPairOpts(t *testing.T, opts TCPOptions) (*TCP, *TCP) {
	t.Helper()
	a, err := NewTCPWithOptions("silo-a", "127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCPWithOptions("silo-b", "127.0.0.1:0", opts)
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	a.SetPeer("silo-b", b.Addr())
	b.SetPeer("silo-a", a.Addr())
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

// TestTCPLocalSendDrainedOnClose: a one-way send to the endpoint's own
// silo runs the handler in a goroutine; Close must wait for it (it used
// to leak untracked), and sends after Close must be rejected.
func TestTCPLocalSendDrainedOnClose(t *testing.T) {
	tp, err := NewTCP("solo", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var finished atomic.Bool
	started := make(chan struct{})
	tp.Register("solo", func(context.Context, Request) (any, error) {
		close(started)
		time.Sleep(50 * time.Millisecond)
		finished.Store(true)
		return nil, nil
	})
	if err := tp.Send(context.Background(), "solo", Request{}); err != nil {
		t.Fatal(err)
	}
	<-started // Close starts only after the handler goroutine is live
	if err := tp.Close(); err != nil {
		t.Fatal(err)
	}
	if !finished.Load() {
		t.Fatal("Close returned before the local one-way handler finished")
	}
	if err := tp.Send(context.Background(), "solo", Request{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after Close = %v, want ErrClosed", err)
	}
}

// TestTCPWriteFailureEvictsConn: when a connection's socket breaks, the
// failed write must mark the conn dead and evict it immediately, so the
// very next call redials (the peer is still alive) instead of failing
// against the cached corpse until a read loop notices.
func TestTCPWriteFailureEvictsConn(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts TCPOptions
	}{
		{"batching", TCPOptions{Stripes: 1}},
		{"nobatching", TCPOptions{Stripes: 1, NoBatching: true}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			a, b := newTCPPairOpts(t, mode.opts)
			if err := b.Register("silo-b", echoHandler); err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			if _, err := a.Call(ctx, "silo-b", Request{Payload: testPayload{1}}); err != nil {
				t.Fatal(err)
			}
			a.mu.Lock()
			c := a.conns["silo-b"][0]
			a.mu.Unlock()
			if c == nil {
				t.Fatal("no cached conn after first call")
			}
			// Break the socket under the transport: writes now fail.
			c.raw.Close()
			// The broken conn surfaces at most a couple of failures (the
			// dead-write call itself plus close/teardown races), then the
			// transport must redial and succeed — quickly, not after a
			// read-timeout.
			deadline := time.Now().Add(2 * time.Second)
			var lastErr error
			for time.Now().Before(deadline) {
				_, err := a.Call(ctx, "silo-b", Request{Payload: testPayload{2}})
				if err == nil {
					a.mu.Lock()
					cur := a.conns["silo-b"][0]
					a.mu.Unlock()
					if cur == c {
						t.Fatal("call succeeded on the broken conn pointer")
					}
					return
				}
				lastErr = err
				if !IsUnreachable(err) {
					t.Fatalf("broken-conn call failed with non-transient error: %v", err)
				}
			}
			t.Fatalf("never redialed after write failure: %v", lastErr)
		})
	}
}

// TestTCPQueuedFramesFailFastOnConnDeath: many calls are queued or in
// flight when the peer dies; every caller must get a transient
// UnreachableError promptly (no stuck callers), and after the peer
// restarts the same transport must recover.
func TestTCPQueuedFramesFailFastOnConnDeath(t *testing.T) {
	caller, err := NewTCPWithOptions("caller", "127.0.0.1:0", TCPOptions{Stripes: 2, SendQueue: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer caller.Close()
	peer, err := NewTCP("peer", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := peer.Addr()
	block := make(chan struct{})
	var inFlight atomic.Int32
	peer.Register("peer", func(context.Context, Request) (any, error) {
		inFlight.Add(1)
		<-block
		return testReply{}, nil
	})
	caller.SetPeer("peer", addr)

	const callers = 32
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			_, err := caller.Call(context.Background(), "peer",
				Request{TargetKey: fmt.Sprintf("actor-%d", i), Payload: testPayload{i}})
			errs <- err
		}(i)
	}
	// Wait until a good portion of the load is inside the peer, the rest
	// queued in stripes or send queues.
	deadline := time.Now().Add(5 * time.Second)
	for inFlight.Load() < 8 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	closeDone := make(chan struct{})
	go func() { peer.Close(); close(closeDone) }()
	for i := 0; i < callers; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Fatal("queued call reported success across peer death")
			}
			if !IsUnreachable(err) {
				t.Fatalf("queued call failed with non-transient error: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("caller %d stuck after connection death", i)
		}
	}
	close(block)
	<-closeDone

	// Restart the peer on the same address; the caller must reconnect.
	var peer2 *TCP
	deadline = time.Now().Add(5 * time.Second)
	for {
		peer2, err = NewTCP("peer", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	defer peer2.Close()
	if err := peer2.Register("peer", echoHandler); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		resp, err := caller.Call(context.Background(), "peer", Request{TargetKey: "actor-1", Payload: testPayload{21}})
		if err == nil {
			if resp.(testReply).N != 42 {
				t.Fatalf("resp = %v", resp)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reconnected under load: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestTCPStripedConnectionsConcurrent hammers a striped transport from
// many goroutines mixing calls and one-way sends; run under -race this
// is the striping data-race check, and every call must succeed and
// return its own reply.
func TestTCPStripedConnectionsConcurrent(t *testing.T) {
	a, b := newTCPPairOpts(t, TCPOptions{Stripes: 4})
	var oneWays atomic.Int32
	b.Register("silo-b", func(_ context.Context, req Request) (any, error) {
		p := req.Payload.(testPayload)
		if req.Method == "oneway" {
			oneWays.Add(1)
			return nil, nil
		}
		return testReply{N: p.N}, nil
	})
	const workers = 16
	const perWorker = 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("actor-%d-%d", w, i%5)
				n := w*1000 + i
				resp, err := a.Call(ctx, "silo-b", Request{TargetKey: key, Payload: testPayload{n}})
				if err != nil {
					t.Errorf("worker %d call %d: %v", w, i, err)
					return
				}
				if resp.(testReply).N != n {
					t.Errorf("worker %d call %d: crossed response %v", w, i, resp)
					return
				}
				if i%4 == 0 {
					if err := a.Send(ctx, "silo-b", Request{TargetKey: key, Method: "oneway", Payload: testPayload{n}}); err != nil {
						t.Errorf("worker %d send %d: %v", w, i, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	// All stripes should have been dialed under this key spread.
	a.mu.Lock()
	dialed := 0
	for _, c := range a.conns["silo-b"] {
		if c != nil {
			dialed++
		}
	}
	a.mu.Unlock()
	if dialed < 2 {
		t.Fatalf("striping inactive: %d stripes dialed, want >= 2", dialed)
	}
	deadline := time.Now().Add(2 * time.Second)
	for oneWays.Load() < workers*perWorker/4 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := oneWays.Load(); got < workers*perWorker/4 {
		t.Fatalf("one-way frames delivered = %d, want %d", got, workers*perWorker/4)
	}
}

// TestTCPReplyWriteErrorCounted: a response that cannot be written back
// (peer hung up between request and reply) must mark the server-side
// stream dead and count transport.reply_write_errors instead of
// vanishing silently.
func TestTCPReplyWriteErrorCounted(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts TCPOptions
	}{
		{"batching", TCPOptions{}},
		{"nobatching", TCPOptions{NoBatching: true}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			reg := metrics.NewRegistry()
			opts := mode.opts
			opts.Metrics = reg
			tp, err := NewTCPWithOptions("srv", "127.0.0.1:0", opts)
			if err != nil {
				t.Fatal(err)
			}
			defer tp.Close()
			if err := tp.Register("srv", echoHandler); err != nil {
				t.Fatal(err)
			}
			// A pipe stands in for the accepted connection; closing the
			// far end makes every write fail immediately.
			here, there := net.Pipe()
			there.Close()
			w := tp.newWriter("", here, tp.newStream(here))
			if !tp.opts.NoBatching {
				tp.wg.Add(1)
				go w.run(&tp.wg)
			}
			f := codec.GetFrame()
			f.ID = 7
			f.Kind = codec.FrameRequest
			f.Payload = testPayload{3}
			tp.dispatch(w, f)
			deadline := time.Now().Add(2 * time.Second)
			for reg.Counter("transport.reply_write_errors").Value() == 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if got := reg.Counter("transport.reply_write_errors").Value(); got != 1 {
				t.Fatalf("reply_write_errors = %d, want 1", got)
			}
			// The failed reply kills the stream (counting happens just
			// before the kill, so poll).
			select {
			case <-w.closed:
			case <-time.After(2 * time.Second):
				t.Fatal("writer not marked dead by reply write failure")
			}
			// A second reply on the dead stream is also counted, not hung.
			f2 := codec.GetFrame()
			f2.ID = 8
			f2.Kind = codec.FrameRequest
			f2.Payload = testPayload{4}
			tp.dispatch(w, f2)
			deadline = time.Now().Add(2 * time.Second)
			for reg.Counter("transport.reply_write_errors").Value() < 2 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if got := reg.Counter("transport.reply_write_errors").Value(); got != 2 {
				t.Fatalf("reply_write_errors after dead-stream reply = %d, want 2", got)
			}
		})
	}
}

// TestFrameWriterCoalesces pins the smart-batching contract at the unit
// level: frames that arrive while a flush is blocked ship together in
// the next flush, and the flush metrics record the batch size.
func TestFrameWriterCoalesces(t *testing.T) {
	reg := metrics.NewRegistry()
	tp, err := NewTCPWithOptions("w", "127.0.0.1:0", TCPOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	here, there := net.Pipe()
	defer here.Close()
	w := tp.newWriter("peer", here, tp.newStream(here))
	// Pretend several callers are active so enqueue takes the queue path
	// instead of the solo-caller inline write (which would block on the
	// unread pipe).
	w.active.Add(2)
	tp.wg.Add(1)
	go w.run(&tp.wg)

	// Enqueue the first frame; its flush blocks on the unread pipe while
	// nine more frames pile into the queue.
	const frames = 10
	dones := make([]chan error, frames)
	for i := 0; i < frames; i++ {
		dones[i] = make(chan error, 1)
		f := codec.GetFrame()
		f.ID = uint64(i + 1)
		f.Kind = codec.FrameOneWay
		f.Payload = testPayload{i}
		if err := w.enqueue(context.Background(), &sendReq{frame: f, done: dones[i]}); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
		if i == 0 {
			// Give the writer a moment to pick up frame 0 and block in
			// its flush before the rest arrive.
			time.Sleep(20 * time.Millisecond)
		}
	}
	// Unblock the pipe; everything drains.
	go io.Copy(io.Discard, there) //nolint:errcheck
	for i, d := range dones {
		select {
		case err := <-d:
			if err != nil {
				t.Fatalf("frame %d failed: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("frame %d never flushed", i)
		}
	}
	snap := reg.Histogram("transport.flush.frames").Snapshot()
	if snap.Count < 2 {
		t.Fatalf("flushes = %d, want >= 2", snap.Count)
	}
	if snap.Max < 2 {
		t.Fatalf("max frames-per-flush = %d, want coalescing (> 1)", snap.Max)
	}
	if got := reg.Counter("transport.frames.sent").Value(); got != frames {
		t.Fatalf("frames.sent = %d, want %d", got, frames)
	}
	if depth := reg.Gauge("transport.sendq.depth").Value(); depth != 0 {
		t.Fatalf("sendq.depth after drain = %d, want 0", depth)
	}
	if lat := reg.Histogram("transport.flush.latency").Snapshot(); lat.Count != snap.Count {
		t.Fatalf("flush.latency count = %d, want %d", lat.Count, snap.Count)
	}
	w.fail(errConnClosed)
}

// TestTCPMetricsEndToEnd: driving real traffic populates the flush
// instruments and the send queue drains back to zero.
func TestTCPMetricsEndToEnd(t *testing.T) {
	reg := metrics.NewRegistry()
	a, b := newTCPPairOpts(t, TCPOptions{Stripes: 1, Metrics: reg})
	if err := b.Register("silo-b", echoHandler); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if _, err := a.Call(context.Background(), "silo-b", Request{TargetKey: "k", Payload: testPayload{i}}); err != nil {
					t.Errorf("call: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Both endpoints share the registry, so request flushes (a) and reply
	// flushes (b) both land here; the request side alone is >= 240 frames.
	if reg.Histogram("transport.flush.frames").Snapshot().Count == 0 {
		t.Fatal("no flushes recorded")
	}
	if reg.Counter("transport.frames.sent").Value() < 240 {
		t.Fatalf("frames.sent = %d, want >= 240", reg.Counter("transport.frames.sent").Value())
	}
	if depth := reg.Gauge("transport.sendq.depth").Value(); depth != 0 {
		t.Fatalf("sendq.depth idle = %d, want 0", depth)
	}
}
