package clock

import (
	"fmt"
	"sync/atomic"
	"time"
)

// HLC is a hybrid logical clock timestamp: 48 bits of physical time in
// milliseconds since the Unix epoch, packed above a 16-bit logical
// counter. Packing into one uint64 keeps HLC comparison a plain integer
// compare, makes the zero value "no timestamp", and lets the codec ship
// it as a flat field (the same dependency-free treatment trace IDs get).
//
// The ordering guarantee is the classic HLC one (Kulkarni et al.): if
// event a happens-before event b (same process, or a's timestamp was
// observed before b was stamped), then HLC(a) < HLC(b). Timestamps stay
// within ~one NTP error bound of physical time, so they double as
// human-readable wall-clock estimates in timelines.
type HLC uint64

// hlcLogicalBits is how much of the word the logical counter occupies.
// 16 bits allows 65k causally-chained events per physical millisecond
// before the counter bleeds into the physical part — at which point the
// clock runs ahead of wall time by a millisecond, which HLC semantics
// tolerate (physical time catches up and resets the counter).
const hlcLogicalBits = 16

// WallMillis returns the physical component in Unix milliseconds.
func (h HLC) WallMillis() int64 { return int64(h >> hlcLogicalBits) }

// Logical returns the logical counter component.
func (h HLC) Logical() uint16 { return uint16(h) }

// Time returns the physical component as a time.Time (UTC).
func (h HLC) Time() time.Time { return time.UnixMilli(h.WallMillis()).UTC() }

// IsZero reports whether h is the absent timestamp.
func (h HLC) IsZero() bool { return h == 0 }

// String renders "physical-rfc3339.logical", the form timelines print.
func (h HLC) String() string {
	if h.IsZero() {
		return "hlc:0"
	}
	return fmt.Sprintf("%s.%d", h.Time().Format("15:04:05.000"), h.Logical())
}

// HLCSource mints and merges HLC timestamps for one process. All methods
// are safe for concurrent use; the state is a single uint64 advanced with
// CAS, so minting a timestamp costs a clock read plus one CAS on the
// uncontended path.
type HLCSource struct {
	clk  Clock
	last atomic.Uint64
}

// NewHLC returns an HLC source driven by clk (nil means the real clock).
func NewHLC(clk Clock) *HLCSource {
	if clk == nil {
		clk = Real()
	}
	return &HLCSource{clk: clk}
}

// Now mints the timestamp for a local or send event: the max of physical
// time and the last issued timestamp plus one logical tick.
func (s *HLCSource) Now() HLC {
	pt := uint64(s.clk.Now().UnixMilli()) << hlcLogicalBits
	for {
		last := s.last.Load()
		next := pt
		if last+1 > next {
			next = last + 1
		}
		if s.last.CompareAndSwap(last, next) {
			return HLC(next)
		}
	}
}

// Observe merges a remote timestamp on message receipt and returns the
// timestamp for the receive event, which is strictly greater than both
// the remote stamp and every timestamp this source issued before.
func (s *HLCSource) Observe(remote HLC) HLC {
	pt := uint64(s.clk.Now().UnixMilli()) << hlcLogicalBits
	for {
		last := s.last.Load()
		next := pt
		if last+1 > next {
			next = last + 1
		}
		if uint64(remote)+1 > next {
			next = uint64(remote) + 1
		}
		if s.last.CompareAndSwap(last, next) {
			return HLC(next)
		}
	}
}

// Last returns the most recently issued timestamp without advancing the
// clock (zero if none was issued yet).
func (s *HLCSource) Last() HLC { return HLC(s.last.Load()) }
