package clock

import (
	"sync"
	"testing"
	"time"
)

func TestHLCMonotonicUnderFrozenClock(t *testing.T) {
	fake := NewFake(time.Unix(1000, 0))
	s := NewHLC(fake)
	prev := s.Now()
	for i := 0; i < 100; i++ {
		cur := s.Now()
		if cur <= prev {
			t.Fatalf("HLC went backwards: %v then %v", prev, cur)
		}
		prev = cur
	}
	if prev.WallMillis() != 1000*1000 {
		t.Fatalf("physical component drifted: %d", prev.WallMillis())
	}
	if prev.Logical() < 100 {
		t.Fatalf("logical counter should carry ordering under a frozen clock, got %d", prev.Logical())
	}
}

func TestHLCTracksPhysicalTime(t *testing.T) {
	fake := NewFake(time.Unix(1000, 0))
	s := NewHLC(fake)
	a := s.Now()
	fake.Advance(5 * time.Second)
	b := s.Now()
	if b.WallMillis()-a.WallMillis() != 5000 {
		t.Fatalf("expected 5000ms advance, got %d", b.WallMillis()-a.WallMillis())
	}
	if b.Logical() != 0 {
		t.Fatalf("fresh physical time should reset logical, got %d", b.Logical())
	}
}

func TestHLCObserveDominatesRemote(t *testing.T) {
	fake := NewFake(time.Unix(1000, 0))
	// Remote runs far ahead of our physical clock.
	remoteSrc := NewHLC(NewFake(time.Unix(2000, 0)))
	local := NewHLC(fake)
	remote := remoteSrc.Now()
	got := local.Observe(remote)
	if got <= remote {
		t.Fatalf("receive event %v must order after remote send %v", got, remote)
	}
	// And local events after the receive stay above it.
	if n := local.Now(); n <= got {
		t.Fatalf("local event %v after receive %v must order after it", n, got)
	}
}

func TestHLCConcurrentUnique(t *testing.T) {
	s := NewHLC(Real())
	const goroutines, per = 8, 500
	out := make([][]HLC, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ts := make([]HLC, per)
			for i := range ts {
				ts[i] = s.Now()
			}
			out[g] = ts
		}(g)
	}
	wg.Wait()
	seen := make(map[HLC]bool, goroutines*per)
	for _, ts := range out {
		for _, h := range ts {
			if seen[h] {
				t.Fatalf("duplicate HLC issued: %v", h)
			}
			seen[h] = true
		}
	}
}

func TestHLCZeroAndString(t *testing.T) {
	var z HLC
	if !z.IsZero() {
		t.Fatal("zero HLC should be IsZero")
	}
	if z.String() != "hlc:0" {
		t.Fatalf("zero string: %q", z.String())
	}
	s := NewHLC(NewFake(time.Unix(1000, 0)))
	if s.Last() != 0 {
		t.Fatal("Last before first Now should be zero")
	}
	h := s.Now()
	if s.Last() != h {
		t.Fatalf("Last %v != issued %v", s.Last(), h)
	}
}
