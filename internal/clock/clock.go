// Package clock abstracts time for the AODB runtime.
//
// Production code uses the wall clock; tests and deterministic simulations
// use a fake clock that only advances when told to. Every component in this
// repository that needs time (idle-activation collection, reminders, token
// buckets, latency windows) takes a Clock so its behaviour is testable
// without real sleeps.
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock provides the time operations the runtime needs.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the current time after d.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks for d.
	Sleep(d time.Duration)
	// NewTimer returns a timer that fires once after d.
	NewTimer(d time.Duration) Timer
	// NewTicker returns a ticker that fires every d.
	NewTicker(d time.Duration) Ticker
	// Since returns the elapsed time since t.
	Since(t time.Time) time.Duration
}

// Timer is the subset of *time.Timer the runtime uses.
type Timer interface {
	C() <-chan time.Time
	Stop() bool
	Reset(d time.Duration) bool
}

// Ticker is the subset of *time.Ticker the runtime uses.
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

// Real returns a Clock backed by the system clock.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) Since(t time.Time) time.Duration        { return time.Since(t) }
func (realClock) NewTimer(d time.Duration) Timer         { return realTimer{time.NewTimer(d)} }
func (realClock) NewTicker(d time.Duration) Ticker       { return realTicker{time.NewTicker(d)} }

type realTimer struct{ t *time.Timer }

func (t realTimer) C() <-chan time.Time        { return t.t.C }
func (t realTimer) Stop() bool                 { return t.t.Stop() }
func (t realTimer) Reset(d time.Duration) bool { return t.t.Reset(d) }

type realTicker struct{ t *time.Ticker }

func (t realTicker) C() <-chan time.Time { return t.t.C }
func (t realTicker) Stop()               { t.t.Stop() }

// Fake is a manually advanced clock for deterministic tests.
//
// Advance moves time forward and fires, in order, every timer whose deadline
// has been reached. A Fake clock never fires timers spontaneously.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
	seq     int64
}

// NewFake returns a fake clock starting at start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// Now returns the fake current time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Since returns the fake elapsed time since t.
func (f *Fake) Since(t time.Time) time.Duration { return f.Now().Sub(t) }

// Advance moves the clock forward by d, firing due timers in deadline order.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	target := f.now.Add(d)
	for len(f.waiters) > 0 && !f.waiters[0].at.After(target) {
		w := heap.Pop(&f.waiters).(*waiter)
		f.now = w.at
		if w.period > 0 {
			w.at = w.at.Add(w.period)
			w.seq = f.nextSeq()
			heap.Push(&f.waiters, w)
		} else {
			w.stopped = true
		}
		// Deliver without holding the lock ordering issues: channel is
		// buffered, so a non-blocking send suffices (ticker semantics drop
		// ticks nobody consumed).
		select {
		case w.ch <- f.now:
		default:
		}
	}
	f.now = target
	f.mu.Unlock()
}

// After returns a channel that fires once d of fake time has been advanced.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	return f.NewTimer(d).C()
}

// Sleep on a fake clock blocks until the clock has been advanced past d by
// another goroutine.
func (f *Fake) Sleep(d time.Duration) { <-f.After(d) }

// NewTimer returns a fake timer firing after d of advanced time.
func (f *Fake) NewTimer(d time.Duration) Timer {
	f.mu.Lock()
	defer f.mu.Unlock()
	w := &waiter{ch: make(chan time.Time, 1), at: f.now.Add(d), seq: f.nextSeq()}
	heap.Push(&f.waiters, w)
	return &fakeTimer{f: f, w: w}
}

// NewTicker returns a fake ticker firing every d of advanced time.
func (f *Fake) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker period")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	w := &waiter{ch: make(chan time.Time, 1), at: f.now.Add(d), period: d, seq: f.nextSeq()}
	heap.Push(&f.waiters, w)
	return &fakeTicker{f: f, w: w}
}

func (f *Fake) nextSeq() int64 {
	f.seq++
	return f.seq
}

func (f *Fake) remove(w *waiter) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if w.stopped {
		return false
	}
	w.stopped = true
	for i, o := range f.waiters {
		if o == w {
			heap.Remove(&f.waiters, i)
			break
		}
	}
	return true
}

type waiter struct {
	ch      chan time.Time
	at      time.Time
	period  time.Duration // 0 for one-shot timers
	seq     int64         // tiebreak for equal deadlines: FIFO
	stopped bool
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if h[i].at.Equal(h[j].at) {
		return h[i].seq < h[j].seq
	}
	return h[i].at.Before(h[j].at)
}
func (h waiterHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x any)   { *h = append(*h, x.(*waiter)) }
func (h *waiterHeap) Pop() any     { old := *h; n := len(old); w := old[n-1]; *h = old[:n-1]; return w }

type fakeTimer struct {
	f *Fake
	w *waiter
}

func (t *fakeTimer) C() <-chan time.Time { return t.w.ch }
func (t *fakeTimer) Stop() bool          { return t.f.remove(t.w) }

func (t *fakeTimer) Reset(d time.Duration) bool {
	active := t.f.remove(t.w)
	t.f.mu.Lock()
	t.w.stopped = false
	t.w.at = t.f.now.Add(d)
	t.w.seq = t.f.nextSeq()
	heap.Push(&t.f.waiters, t.w)
	t.f.mu.Unlock()
	return active
}

type fakeTicker struct {
	f *Fake
	w *waiter
}

func (t *fakeTicker) C() <-chan time.Time { return t.w.ch }
func (t *fakeTicker) Stop()               { t.f.remove(t.w) }
