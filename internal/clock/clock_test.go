package clock

import (
	"testing"
	"time"
)

func TestRealClockNow(t *testing.T) {
	c := Real()
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real().Now() = %v, want between %v and %v", got, before, after)
	}
}

func TestRealClockSince(t *testing.T) {
	c := Real()
	start := c.Now()
	if d := c.Since(start); d < 0 {
		t.Fatalf("Since returned negative duration %v", d)
	}
}

func TestRealTimerFires(t *testing.T) {
	c := Real()
	tm := c.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(time.Second):
		t.Fatal("real timer did not fire within 1s")
	}
}

func TestRealTickerFires(t *testing.T) {
	c := Real()
	tk := c.NewTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C():
	case <-time.After(time.Second):
		t.Fatal("real ticker did not fire within 1s")
	}
}

func TestFakeNowAndAdvance(t *testing.T) {
	start := time.Date(2026, 7, 5, 0, 0, 0, 0, time.UTC)
	f := NewFake(start)
	if !f.Now().Equal(start) {
		t.Fatalf("Now() = %v, want %v", f.Now(), start)
	}
	f.Advance(42 * time.Second)
	want := start.Add(42 * time.Second)
	if !f.Now().Equal(want) {
		t.Fatalf("after Advance, Now() = %v, want %v", f.Now(), want)
	}
}

func TestFakeTimerFiresAtDeadline(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tm := f.NewTimer(10 * time.Second)
	f.Advance(9 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("timer fired before deadline")
	default:
	}
	f.Advance(time.Second)
	select {
	case at := <-tm.C():
		if !at.Equal(time.Unix(10, 0)) {
			t.Fatalf("timer fired at %v, want %v", at, time.Unix(10, 0))
		}
	default:
		t.Fatal("timer did not fire at deadline")
	}
}

func TestFakeTimerStop(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tm := f.NewTimer(time.Second)
	if !tm.Stop() {
		t.Fatal("Stop on pending timer should return true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should return false")
	}
	f.Advance(2 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
}

func TestFakeTimerReset(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tm := f.NewTimer(time.Second)
	if !tm.Reset(5 * time.Second) {
		t.Fatal("Reset on active timer should return true")
	}
	f.Advance(time.Second)
	select {
	case <-tm.C():
		t.Fatal("reset timer fired at original deadline")
	default:
	}
	f.Advance(4 * time.Second)
	select {
	case <-tm.C():
	default:
		t.Fatal("reset timer did not fire at new deadline")
	}
}

func TestFakeTickerFiresRepeatedly(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tk := f.NewTicker(time.Second)
	defer tk.Stop()
	for i := 1; i <= 3; i++ {
		f.Advance(time.Second)
		select {
		case at := <-tk.C():
			if !at.Equal(time.Unix(int64(i), 0)) {
				t.Fatalf("tick %d at %v, want %v", i, at, time.Unix(int64(i), 0))
			}
		default:
			t.Fatalf("ticker missed tick %d", i)
		}
	}
}

func TestFakeTickerDropsUnconsumedTicks(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tk := f.NewTicker(time.Second)
	defer tk.Stop()
	f.Advance(10 * time.Second) // 10 ticks, buffer of 1
	n := 0
	for {
		select {
		case <-tk.C():
			n++
			continue
		default:
		}
		break
	}
	if n != 1 {
		t.Fatalf("consumed %d ticks, want 1 (unconsumed ticks must be dropped)", n)
	}
}

func TestFakeTickerStop(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tk := f.NewTicker(time.Second)
	tk.Stop()
	f.Advance(5 * time.Second)
	select {
	case <-tk.C():
		t.Fatal("stopped ticker fired")
	default:
	}
}

func TestFakeAfterAndSleep(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	ch := f.After(time.Second)
	// Register the sleep channel synchronously so Advance is guaranteed
	// to see it; Sleep itself is just a receive on After.
	sleepCh := f.After(2 * time.Second)
	done := make(chan struct{})
	go func() {
		<-sleepCh
		close(done)
	}()
	f.Advance(time.Second)
	select {
	case <-ch:
	default:
		t.Fatal("After channel did not fire")
	}
	f.Advance(time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep did not return after advancing past deadline")
	}
}

func TestFakeTimersFireInDeadlineOrder(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	order := make(chan int, 2)
	t2 := f.NewTimer(2 * time.Second)
	t1 := f.NewTimer(1 * time.Second)
	f.Advance(3 * time.Second)
	// Both fired; channel receive order is per timer, so check timestamps.
	at1 := <-t1.C()
	at2 := <-t2.C()
	if !at1.Before(at2) {
		t.Fatalf("timer order wrong: t1 at %v, t2 at %v", at1, at2)
	}
	close(order)
}
