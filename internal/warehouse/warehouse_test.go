package warehouse

import (
	"context"
	"testing"
	"time"

	"aodb/internal/core"
	"aodb/internal/kvstore"
	"aodb/internal/shm"
)

var t0 = time.Date(2026, 7, 5, 10, 0, 0, 0, time.UTC)

func seed(w *Warehouse) {
	// org-1: two channels; org-2: one channel; across two hours.
	for i := 0; i < 10; i++ {
		at := t0.Add(time.Duration(i*20) * time.Minute) // spans 4 hours
		w.AddReading("org-1", "s1", "s1/ch-0", Physical, at, float64(i))
		w.AddReading("org-1", "s1", "s1/ch-1", Physical, at, float64(i*10))
		w.AddReading("org-2", "s9", "s9/ch-0", Physical, at, 100)
	}
	w.AddReading("org-1", "s1", "s1/virt", Virtual, t0, 42)
}

func TestRowsAndChannels(t *testing.T) {
	w := New()
	seed(w)
	if w.Rows() != 31 {
		t.Fatalf("rows = %d, want 31", w.Rows())
	}
	chans := w.Channels()
	if len(chans) != 4 {
		t.Fatalf("channels = %d, want 4 (dictionary interning broken)", len(chans))
	}
}

func TestRollUpByOrgAndHour(t *testing.T) {
	w := New()
	seed(w)
	rows, err := w.RollUp(Filter{}, GroupOrg, ByHour)
	if err != nil {
		t.Fatal(err)
	}
	// 10 readings at 20-min spacing span 4 distinct hours (10:00-13:00):
	// org-1 has those 4 buckets (virt included in hour 10), org-2 has 4.
	var org1, org2 int
	for _, r := range rows {
		switch r.Group {
		case "org-1":
			org1++
		case "org-2":
			org2++
		default:
			t.Fatalf("unexpected group %q", r.Group)
		}
	}
	if org1 != 4 || org2 != 4 {
		t.Fatalf("buckets org1=%d org2=%d, want 4/4", org1, org2)
	}
	// First org-1 hour: readings i=0,1,2 on two channels + the virtual 42.
	first := rows[0]
	if first.Group != "org-1" || !first.Bucket.Equal(t0) {
		t.Fatalf("first row = %+v", first)
	}
	if first.Count != 7 { // 3 from ch-0, 3 from ch-1, 1 virtual
		t.Fatalf("first.Count = %d, want 7", first.Count)
	}
	wantSum := (0 + 1 + 2) + (0 + 10 + 20) + 42.0
	if first.Sum != wantSum {
		t.Fatalf("first.Sum = %v, want %v", first.Sum, wantSum)
	}
}

func TestRollUpByChannelAndDay(t *testing.T) {
	w := New()
	seed(w)
	rows, err := w.RollUp(Filter{Org: "org-1", Kind: Physical}, GroupChannel, ByDay)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v, want 2 channels x 1 day", rows)
	}
	if rows[0].Group != "s1/ch-0" || rows[0].Count != 10 || rows[0].Min != 0 || rows[0].Max != 9 {
		t.Fatalf("ch-0 day row = %+v", rows[0])
	}
	if rows[1].Group != "s1/ch-1" || rows[1].Sum != 450 {
		t.Fatalf("ch-1 day row = %+v", rows[1])
	}
	if rows[1].Mean() != 45 {
		t.Fatalf("mean = %v", rows[1].Mean())
	}
}

func TestRollUpMonthGrain(t *testing.T) {
	w := New()
	w.AddReading("o", "s", "c", Physical, time.Date(2026, 7, 1, 5, 0, 0, 0, time.UTC), 1)
	w.AddReading("o", "s", "c", Physical, time.Date(2026, 7, 30, 5, 0, 0, 0, time.UTC), 2)
	w.AddReading("o", "s", "c", Physical, time.Date(2026, 8, 1, 5, 0, 0, 0, time.UTC), 4)
	rows, err := w.RollUp(Filter{}, GroupOrg, ByMonth)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Sum != 3 || rows[1].Sum != 4 {
		t.Fatalf("month rows = %+v", rows)
	}
}

func TestRollUpUnknownGrouping(t *testing.T) {
	w := New()
	if _, err := w.RollUp(Filter{}, GroupBy("bogus"), ByHour); err == nil {
		t.Fatal("bogus grouping accepted")
	}
}

func TestFilterTimeRangeAndKind(t *testing.T) {
	w := New()
	seed(w)
	pts := w.Slice(Filter{Org: "org-1", Kind: Virtual})
	if len(pts) != 1 || pts[0].Value != 42 {
		t.Fatalf("virtual slice = %+v", pts)
	}
	pts = w.Slice(Filter{Channel: "s1/ch-0", From: t0.Add(30 * time.Minute), To: t0.Add(70 * time.Minute)})
	if len(pts) != 2 || pts[0].Value != 2 || pts[1].Value != 3 {
		t.Fatalf("range slice = %+v", pts)
	}
}

func TestSliceOrdering(t *testing.T) {
	w := New()
	w.AddReading("o", "s", "b", Physical, t0.Add(time.Minute), 2)
	w.AddReading("o", "s", "a", Physical, t0.Add(time.Minute), 1)
	w.AddReading("o", "s", "a", Physical, t0, 0)
	pts := w.Slice(Filter{})
	if pts[0].Value != 0 || pts[1].Channel != "a" || pts[2].Channel != "b" {
		t.Fatalf("ordering = %+v", pts)
	}
}

// TestExportFromStore runs the full paper pipeline: SHM platform ingests
// with persistence, the runtime shuts down (archiving actor state in the
// grain store), and the warehouse exports the archived windows into the
// star schema for analytical queries.
func TestExportFromStore(t *testing.T) {
	kv, err := kvstore.Open(kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	ctx := context.Background()

	rt, err := core.New(core.Config{Store: kv})
	if err != nil {
		t.Fatal(err)
	}
	platform, err := shm.NewPlatform(rt, shm.Options{Persist: core.PersistOnDeactivate})
	if err != nil {
		t.Fatal(err)
	}
	rt.AddSilo("silo-1", nil)
	if err := platform.CreateOrganization(ctx, "org-0", "Org"); err != nil {
		t.Fatal(err)
	}
	sensor := shm.SensorKey("org-0", 0)
	if err := platform.InstallSensor(ctx, shm.SensorSpec{
		Org: "org-0", Key: sensor, PhysicalChannels: 2, WithVirtual: true,
	}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		at := t0.Add(time.Duration(r) * time.Second)
		if err := platform.Ingest(ctx, sensor, at, [][]float64{{1, 2}, {10, 20}}); err != nil {
			t.Fatal(err)
		}
	}
	// Let async channel/virtual processing finish, then archive.
	deadline := time.Now().Add(3 * time.Second)
	for {
		pts, err := platform.RawData(ctx, shm.VirtualKey(sensor), t0.Add(-time.Hour), t0.Add(time.Hour))
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) == 6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("virtual window = %d points", len(pts))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := rt.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	w := New()
	n, err := ExportFromStore(ctx, w, kv, "grains")
	if err != nil {
		t.Fatal(err)
	}
	// 2 channels x 6 points + virtual x 6.
	if n != 18 || w.Rows() != 18 {
		t.Fatalf("exported %d facts, want 18", n)
	}
	rows, err := w.RollUp(Filter{Org: "org-0", Kind: Physical}, GroupChannel, ByHour)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Count != 6 {
		t.Fatalf("rollup = %+v", rows)
	}
	virt := w.Slice(Filter{Kind: Virtual})
	if len(virt) != 6 || virt[0].Value != 11 {
		t.Fatalf("virtual facts = %+v", virt)
	}
	// Virtual channels derive their sensor from the key.
	for _, ch := range w.Channels() {
		if ch.Kind == Virtual && ch.Sensor != sensor {
			t.Fatalf("virtual channel sensor = %q, want %q", ch.Sensor, sensor)
		}
	}
}

func TestExportMissingTable(t *testing.T) {
	kv, err := kvstore.Open(kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	if _, err := ExportFromStore(context.Background(), New(), kv, "ghost"); err == nil {
		t.Fatal("missing table accepted")
	}
}
