// Package warehouse implements the analytical side of the paper's
// three-component architecture: "data recorded in the storage system can
// be exported into a classic star schema implemented in the analytical
// database ... targeted at analytical queries over historical data".
//
// The star schema has one fact table of sensor readings and two
// dimensions:
//
//	fact_readings(time_key, channel_key, value)
//	dim_time(time_key, hour, day, month)        — derived on the fly
//	dim_channel(channel_key, org, sensor, name, kind)
//
// Facts are stored columnar (parallel slices, dictionary-encoded
// dimension keys), which keeps scans cache-friendly and the memory
// footprint small. The Exporter walks the grain-state table of the
// kvstore — the archived actor states — decoding persisted channel
// windows into facts, exactly the storage-to-warehouse path the paper
// sketches.
package warehouse

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"aodb/internal/kvstore"
)

// ChannelKind distinguishes physical from virtual channels.
type ChannelKind string

// Channel kinds.
const (
	Physical ChannelKind = "physical"
	Virtual  ChannelKind = "virtual"
)

// Channel is one dim_channel row.
type Channel struct {
	Key    int
	Org    string
	Sensor string
	Name   string // full channel actor key
	Kind   ChannelKind
}

// Warehouse is the in-memory columnar store.
type Warehouse struct {
	// Fact columns, index-aligned.
	times  []int64 // unix nanos
	chans  []int   // dim_channel keys
	values []float64

	// dim_channel, dictionary-encoded.
	channels  []Channel
	channelID map[string]int
}

// New returns an empty warehouse.
func New() *Warehouse {
	return &Warehouse{channelID: make(map[string]int)}
}

// Rows returns the fact count.
func (w *Warehouse) Rows() int { return len(w.times) }

// Channels returns the channel dimension, ordered by key.
func (w *Warehouse) Channels() []Channel {
	return append([]Channel(nil), w.channels...)
}

// channelKey interns a channel dimension row.
func (w *Warehouse) channelKey(org, sensor, name string, kind ChannelKind) int {
	if id, ok := w.channelID[name]; ok {
		return id
	}
	id := len(w.channels)
	w.channels = append(w.channels, Channel{Key: id, Org: org, Sensor: sensor, Name: name, Kind: kind})
	w.channelID[name] = id
	return id
}

// AddReading appends one fact row.
func (w *Warehouse) AddReading(org, sensor, channel string, kind ChannelKind, at time.Time, value float64) {
	key := w.channelKey(org, sensor, channel, kind)
	w.times = append(w.times, at.UnixNano())
	w.chans = append(w.chans, key)
	w.values = append(w.values, value)
}

// Grain is the dim_time granularity of a roll-up.
type Grain string

// Granularities.
const (
	ByHour  Grain = "hour"
	ByDay   Grain = "day"
	ByMonth Grain = "month"
)

func truncate(t time.Time, g Grain) time.Time {
	switch g {
	case ByHour:
		return t.Truncate(time.Hour)
	case ByDay:
		return time.Date(t.Year(), t.Month(), t.Day(), 0, 0, 0, 0, t.Location())
	case ByMonth:
		return time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, t.Location())
	default:
		return t
	}
}

// Filter restricts a query's fact scan. Zero fields mean "any".
type Filter struct {
	Org     string
	Sensor  string
	Channel string
	Kind    ChannelKind
	From    time.Time
	To      time.Time
}

func (f Filter) matches(w *Warehouse, i int) bool {
	ch := w.channels[w.chans[i]]
	if f.Org != "" && ch.Org != f.Org {
		return false
	}
	if f.Sensor != "" && ch.Sensor != f.Sensor {
		return false
	}
	if f.Channel != "" && ch.Name != f.Channel {
		return false
	}
	if f.Kind != "" && ch.Kind != f.Kind {
		return false
	}
	t := w.times[i]
	if !f.From.IsZero() && t < f.From.UnixNano() {
		return false
	}
	if !f.To.IsZero() && t > f.To.UnixNano() {
		return false
	}
	return true
}

// Aggregate is one roll-up output row.
type Aggregate struct {
	Group  string // org, sensor, or channel name per GroupBy
	Bucket time.Time
	Count  int64
	Sum    float64
	Min    float64
	Max    float64
}

// Mean returns the row mean.
func (a Aggregate) Mean() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.Sum / float64(a.Count)
}

// GroupBy selects the roll-up dimension.
type GroupBy string

// Grouping dimensions.
const (
	GroupOrg     GroupBy = "org"
	GroupSensor  GroupBy = "sensor"
	GroupChannel GroupBy = "channel"
)

// RollUp scans the fact table once and aggregates matching rows by
// (group, time bucket), returning rows sorted by group then bucket.
func (w *Warehouse) RollUp(filter Filter, group GroupBy, grain Grain) ([]Aggregate, error) {
	keyOf := func(ch Channel) string {
		switch group {
		case GroupOrg:
			return ch.Org
		case GroupSensor:
			return ch.Sensor
		case GroupChannel:
			return ch.Name
		default:
			return ""
		}
	}
	if keyOf(Channel{Org: "x", Sensor: "x", Name: "x"}) == "" {
		return nil, fmt.Errorf("warehouse: unknown grouping %q", group)
	}
	type cell struct{ agg Aggregate }
	cells := map[string]*cell{}
	for i := range w.times {
		if !filter.matches(w, i) {
			continue
		}
		ch := w.channels[w.chans[i]]
		bucket := truncate(time.Unix(0, w.times[i]).UTC(), grain)
		g := keyOf(ch)
		mapKey := g + "\x00" + bucket.Format(time.RFC3339)
		c, ok := cells[mapKey]
		if !ok {
			c = &cell{agg: Aggregate{Group: g, Bucket: bucket, Min: w.values[i], Max: w.values[i]}}
			cells[mapKey] = c
		}
		v := w.values[i]
		c.agg.Count++
		c.agg.Sum += v
		if v < c.agg.Min {
			c.agg.Min = v
		}
		if v > c.agg.Max {
			c.agg.Max = v
		}
	}
	out := make([]Aggregate, 0, len(cells))
	for _, c := range cells {
		out = append(out, c.agg)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Group != out[j].Group {
			return out[i].Group < out[j].Group
		}
		return out[i].Bucket.Before(out[j].Bucket)
	})
	return out, nil
}

// Point is one raw fact row returned by Slice.
type Point struct {
	Channel string
	At      time.Time
	Value   float64
}

// Slice returns the matching raw facts in time order.
func (w *Warehouse) Slice(filter Filter) []Point {
	var out []Point
	for i := range w.times {
		if !filter.matches(w, i) {
			continue
		}
		out = append(out, Point{
			Channel: w.channels[w.chans[i]].Name,
			At:      time.Unix(0, w.times[i]).UTC(),
			Value:   w.values[i],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].At.Equal(out[j].At) {
			return out[i].At.Before(out[j].At)
		}
		return out[i].Channel < out[j].Channel
	})
	return out
}

// persistedChannelState mirrors the JSON the SHM channel actors persist
// to the grain table (internal/shm channelState / virtualState). Only the
// exported fields the warehouse needs are decoded; unknown fields are
// ignored, so the coupling is additive-safe.
type persistedChannelState struct {
	Org    string
	Sensor string
	Window []struct {
		At    time.Time
		Value float64
	}
}

// ExportFromStore walks the grain-state table and loads every persisted
// physical and virtual channel window as facts. It returns the number of
// facts loaded. table is the runtime's state table name (usually
// "grains").
func ExportFromStore(ctx context.Context, w *Warehouse, store *kvstore.Store, table string) (int, error) {
	tb, err := store.Table(table)
	if err != nil {
		return 0, err
	}
	loaded := 0
	export := func(prefix string, kind ChannelKind) error {
		return tb.Scan(ctx, prefix, func(it kvstore.Item) bool {
			var st persistedChannelState
			if err := json.Unmarshal(it.Value, &st); err != nil {
				return true // not a channel state; skip
			}
			name := strings.TrimPrefix(it.Key, prefix)
			sensor := st.Sensor
			if sensor == "" && kind == Virtual {
				// Virtual channels persist Org+Inputs; derive the sensor
				// from the key ("org-3@sensor-17/virt").
				if i := strings.LastIndex(name, "/"); i > 0 {
					sensor = name[:i]
				}
			}
			for _, p := range st.Window {
				w.AddReading(st.Org, sensor, name, kind, p.At, p.Value)
				loaded++
			}
			return true
		})
	}
	if err := export("PhysicalChannel/", Physical); err != nil {
		return loaded, err
	}
	if err := export("VirtualChannel/", Virtual); err != nil {
		return loaded, err
	}
	return loaded, nil
}
