#!/usr/bin/env bash
# timeline_smoke.sh — end-to-end flight-recorder smoke test.
#
# Boots a 3-silo shmserver cluster with SWIM gossip, live rebalancing,
# 3-way replication, and the causal flight recorder (-journal) on every
# silo, puts it under shmload, then SIGKILLs silo-3 mid-run. The
# survivors must: suspect and declare the victim dead, shrink the
# replication ring, freeze anomaly captures (flight-*.json) to disk, and
# — once silo-3 rejoins — live-migrate actors back onto it. Finally
# shmtrace merges every surviving journal into one timeline and the test
# asserts the whole incident reads in causal order:
#
#   member-suspect -> member-dead -> ring-change -> migrate-activate
#
# which is exactly the property HLC stamping buys: cause sorts before
# effect across silos, no matter whose wall clock was ahead.
set -euo pipefail
cd "$(dirname "$0")/.."

L1=${L1:-127.0.0.1:7601}
L2=${L2:-127.0.0.1:7602}
L3=${L3:-127.0.0.1:7603}
O1=${O1:-127.0.0.1:9601}
O2=${O2:-127.0.0.1:9602}
O3=${O3:-127.0.0.1:9603}

bin=$(mktemp -d)
data=$(mktemp -d)
pid1= pid2= pid3= loadpid=
cleanup() {
  for p in "$loadpid" "$pid1" "$pid2" "$pid3"; do
    [ -n "$p" ] && kill "$p" 2>/dev/null || true
  done
  for p in "$loadpid" "$pid1" "$pid2" "$pid3"; do
    [ -n "$p" ] && wait "$p" 2>/dev/null || true
  done
  rm -rf "$bin" "$data"
}
trap cleanup EXIT

go build -o "$bin" ./cmd/shmserver ./cmd/shmload ./cmd/shmtop ./cmd/shmtrace

start_silo() { # name listen obs seeds extra...
  local name=$1 listen=$2 obs=$3 seeds=$4; shift 4
  "$bin/shmserver" -name "$name" -listen "$listen" -silos silo-1,silo-2,silo-3 \
    -gossip -seeds "$seeds" -rebalance -rebalance-every 1s \
    -store "$data/$name" -replicas 3 -sweep-every 500ms \
    -journal -journal-size 16384 -journal-capture-dir "$data/$name/captures" \
    -introspect "$obs" "$@" &
}

wait_obs() { # url
  for _ in $(seq 50); do
    curl -sf "http://$1/obs" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  echo "timeline smoke: $1 never came up"; return 1
}

wait_metric() { # regex what
  for _ in $(seq 150); do
    curl -sf "http://$O1/cluster/prom" 2>/dev/null | grep -Eq "$1" && return 0
    sleep 0.2
  done
  echo "timeline smoke: timed out waiting for $2"; return 1
}

# silo-1 aggregates; with gossip on, its aggregator discovers scrape
# targets from the membership view (no -obs-peers list), which is itself
# part of what this test exercises.
start_silo silo-1 "$L1" "$O1" "silo-2=$L2" -history -history-every 500ms
pid1=$!
start_silo silo-2 "$L2" "$O2" "silo-1=$L1"
pid2=$!
start_silo silo-3 "$L3" "$O3" "silo-1=$L1"
pid3=$!
wait_obs "$O1"; wait_obs "$O2"; wait_obs "$O3"
wait_metric '^aodb_cluster_gossip_members_alive 9' "view convergence on 3 silos"

# Sustained load so the cluster has activations to lose, fail over, and
# rebalance. The client follows gossip; mid-run errors while silo-3 is
# down are expected and tolerated.
"$bin/shmload" -name loadclient -silos silo-1,silo-2,silo-3 \
  -peers "silo-1=$L1,silo-2=$L2,silo-3=$L3" -gossip -seeds "silo-1=$L1" \
  -sensors 2000 -duration 25s -warmup 1s -queries=true >"$data/load.out" 2>&1 &
loadpid=$!
sleep 3

# The incident: silo-3 dies without a goodbye.
kill -9 "$pid3"; wait "$pid3" 2>/dev/null || true; pid3=
echo "timeline smoke: killed silo-3"

# Survivors must converge on the death: each of the 2 remaining members
# reports 1 dead, and the aggregator sums their gauges.
wait_metric '^aodb_cluster_gossip_members_dead 2' "silo-3 declared dead"

# member-dead is anomalous: a survivor must have frozen its ring to disk
# — the window around the crash, preserved across the crash.
sleep 1
if ! ls "$data"/silo-1/captures/flight-*.json "$data"/silo-2/captures/flight-*.json 2>/dev/null | grep -q .; then
  echo "timeline smoke: no anomaly capture written by any survivor"; exit 1
fi
echo "timeline smoke: anomaly capture present"

# Recovery: silo-3 rejoins off a seed; the rebalancers migrate actors
# whose consistent-hash home is silo-3 back onto it. The cumulative
# migrations counter can't distinguish pre-kill shedding from the
# post-rejoin wave, so wait for the activation event to land in the
# rejoined silo's own journal.
start_silo silo-3 "$L3" "$O3" "silo-1=$L1"
pid3=$!
wait_obs "$O3"
wait_metric '^aodb_cluster_gossip_members_alive 9' "silo-3 rejoining the view"
for _ in $(seq 150); do
  curl -sf "http://$O3/events?kind=migrate-activate" 2>/dev/null | grep -q migrate-activate && break
  sleep 0.2
done
curl -sf "http://$O3/events?kind=migrate-activate" | grep -q migrate-activate \
  || { echo "timeline smoke: no migrate-activate on rejoined silo-3"; exit 1; }

wait "$loadpid" || true; loadpid=
cat "$data/load.out"

# Merge the cluster's journals (via the aggregator silo-1 discovered
# from gossip) and assert the incident reads in causal order.
timeline=$("$bin/shmtrace" -cluster "http://$O1")
echo "--- merged timeline (tail) ---"
echo "$timeline" | tail -25

order=$(echo "$timeline" | awk '
  /member-suspect/ && /silo-3/    && !s { s=NR }
  s && /member-dead/ && /silo-3/  && !d { d=NR }
  d && /ring-change/              && !r { r=NR }
  r && /migrate-activate/         && !m { m=NR }
  END { print s+0, d+0, r+0, m+0 }')
read -r s d r m <<<"$order"
for phase in "member-suspect:$s" "member-dead:$d" "ring-change:$r" "migrate-activate:$m"; do
  [ "${phase##*:}" -gt 0 ] || { echo "timeline smoke: ${phase%%:*} missing from merged timeline (s=$s d=$d r=$r m=$m)"; exit 1; }
done
echo "timeline smoke: causal order holds (suspect@$s -> dead@$d -> ring-change@$r -> migrate-activate@$m)"

# The dead window must also be visible in shmtop's TIMELINE panel, and
# filters must narrow to the incident.
"$bin/shmtop" -cluster "http://$O1" -once -k 5 -events 10 | grep -q "TIMELINE" \
  || { echo "timeline smoke: shmtop missing TIMELINE panel"; exit 1; }
"$bin/shmtrace" -cluster "http://$O1" -kind member-dead | grep -q "member-dead" \
  || { echo "timeline smoke: shmtrace -kind filter broken"; exit 1; }

echo "timeline smoke: OK"
