#!/usr/bin/env bash
# repl_smoke.sh — end-to-end replicated-state smoke test.
#
# Boots a 3-silo shmserver cluster with 3-way replicated actor state
# (W=2, R=2, fast anti-entropy sweeps), drives load, then gracefully
# stops one silo, DESTROYS its entire store directory, and restarts it.
# The cluster must: repair the wiped replica from its peers (divergent
# keys > 0 on the anti-entropy counters), serve a second load run with
# zero errors (quorum reads converge around the rebuilt replica), and
# report replica health through /cluster/prom and shmtop.
set -euo pipefail
cd "$(dirname "$0")/.."

L1=${L1:-127.0.0.1:7401}
L2=${L2:-127.0.0.1:7402}
L3=${L3:-127.0.0.1:7403}
O1=${O1:-127.0.0.1:9401}
O2=${O2:-127.0.0.1:9402}
O3=${O3:-127.0.0.1:9403}
SILOS=silo-1,silo-2,silo-3

bin=$(mktemp -d)
data=$(mktemp -d)
pid1= pid2= pid3=
cleanup() {
  for p in "$pid1" "$pid2" "$pid3"; do
    [ -n "$p" ] && kill "$p" 2>/dev/null || true
  done
  for p in "$pid1" "$pid2" "$pid3"; do
    [ -n "$p" ] && wait "$p" 2>/dev/null || true
  done
  rm -rf "$bin" "$data"
}
trap cleanup EXIT

go build -o "$bin" ./cmd/shmserver ./cmd/shmload ./cmd/shmtop

start_silo() { # name listen obs peers extra...
  local name=$1 listen=$2 obs=$3 peers=$4; shift 4
  "$bin/shmserver" -name "$name" -listen "$listen" -silos "$SILOS" -peers "$peers" \
    -store "$data/$name" -durable -replicas 3 -read-quorum 2 -write-quorum 2 \
    -sweep-every 500ms -introspect "$obs" "$@" &
}

wait_obs() { # url
  for _ in $(seq 50); do
    curl -sf "http://$1/obs" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  echo "repl smoke: $1 never came up"; return 1
}

start_silo silo-1 "$L1" "$O1" "silo-2=$L2,silo-3=$L3" \
  -history -history-every 500ms -obs-peers "silo-2=$O2,silo-3=$O3"
pid1=$!
start_silo silo-2 "$L2" "$O2" "silo-1=$L1,silo-3=$L3"
pid2=$!
start_silo silo-3 "$L3" "$O3" "silo-1=$L1,silo-2=$L2"
pid3=$!
wait_obs "$O1"; wait_obs "$O2"; wait_obs "$O3"

peers="silo-1=$L1,silo-2=$L2,silo-3=$L3"
"$bin/shmload" -name loadclient -silos "$SILOS" -peers "$peers" \
  -replicas 3 -read-quorum 2 -write-quorum 2 \
  -sensors 20 -duration 3s -warmup 1s -queries=true

# Gracefully stop silo-2: its activations persist through the write
# quorum (their state lands on peer replicas too), its hint queue
# drains, and its WAL gets a final sync barrier.
kill -TERM "$pid2"
wait "$pid2" 2>/dev/null || true
pid2=

# Total storage loss: silo-2's WAL, snapshots, and hint queue are gone.
rm -rf "$data/silo-2"

start_silo silo-2 "$L2" "$O2" "silo-1=$L1,silo-3=$L3"
pid2=$!
wait_obs "$O2"

# Let a few anti-entropy rounds run: peers push silo-2's lost keys back.
sleep 3

# Second load run must converge through quorum reads around the rebuilt
# replica: zero errors, same population.
out2=$("$bin/shmload" -name loadclient -silos "$SILOS" -peers "$peers" \
  -replicas 3 -read-quorum 2 -write-quorum 2 \
  -sensors 20 -duration 3s -warmup 1s -queries=true)
echo "$out2"
echo "$out2" | grep -q "errors:" && { echo "repl smoke: post-wipe load saw errors"; exit 1; }

sleep 1 # one aggregator round past the load

prom=$(curl -sf "http://$O1/cluster/prom")
echo "$prom" | grep -E '^aodb_cluster_replication_' || true
echo "$prom" | grep -Eq '^aodb_cluster_replication_antientropy_sweeps [1-9]' \
  || { echo "repl smoke: no anti-entropy sweeps ran"; exit 1; }
echo "$prom" | grep -Eq '^aodb_cluster_replication_antientropy_divergent_keys [1-9]' \
  || { echo "repl smoke: wiped replica was never repaired by anti-entropy"; exit 1; }
echo "$prom" | grep -Eq '^aodb_cluster_replication_hints_pending 0' \
  || { echo "repl smoke: hints still pending after convergence"; exit 1; }

frame=$("$bin/shmtop" -cluster "http://$O1" -once -k 5)
echo "$frame" | grep -q "REPLICATION" || { echo "repl smoke: shmtop missing replica-health line"; exit 1; }
echo "$frame" | grep -q "3/3 silos up" || { echo "repl smoke: not all silos up"; exit 1; }

echo "repl smoke: OK"
