#!/usr/bin/env bash
# obs_smoke.sh — end-to-end observability smoke test.
#
# Boots one shmserver silo with introspection, hot-spot profiling, and
# the in-process cluster aggregator; drives a short shmload run against
# it; then checks that `shmtop -once` renders a non-empty hot-actor
# panel and that /cluster serves merged hot actors and histograms.
set -euo pipefail
cd "$(dirname "$0")/.."

LISTEN=${LISTEN:-127.0.0.1:7301}
OBS=${OBS:-127.0.0.1:9301}

bin=$(mktemp -d)
server_pid=
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  [ -n "$server_pid" ] && wait "$server_pid" 2>/dev/null || true
  rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin" ./cmd/shmserver ./cmd/shmload ./cmd/shmtop

"$bin/shmserver" -name silo-1 -listen "$LISTEN" -silos silo-1 \
  -introspect "$OBS" -profile -history -history-every 500ms &
server_pid=$!

for _ in $(seq 50); do
  curl -sf "http://$OBS/obs" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -sf "http://$OBS/obs" >/dev/null || { echo "obs smoke: silo introspection never came up"; exit 1; }

"$bin/shmload" -name loadclient -silos silo-1 -peers "silo-1=$LISTEN" \
  -sensors 20 -duration 4s -warmup 1s -queries=true

sleep 1 # one aggregator round past the load

frame=$("$bin/shmtop" -cluster "http://$OBS" -once -k 10)
echo "$frame"
echo "$frame" | grep -q "1/1 silos up" || { echo "obs smoke: silo not reported up"; exit 1; }
echo "$frame" | grep -q "HOT ACTORS"   || { echo "obs smoke: hot-actor panel missing"; exit 1; }
echo "$frame" | grep -Eq "(Sensor|Org|User)/" || { echo "obs smoke: no hot actors attributed"; exit 1; }
echo "$frame" | grep -q "TAIL LATENCY" || { echo "obs smoke: merged histograms missing"; exit 1; }

# Capture before grepping: `curl | grep -q` under pipefail can fail on
# the early-exit SIGPIPE even when the match is present.
cluster=$(curl -sf "http://$OBS/cluster")
echo "$cluster" | grep -q '"hot_actors"' \
  || { echo "obs smoke: /cluster missing hot_actors"; exit 1; }
prom=$(curl -sf "http://$OBS/cluster/prom")
echo "$prom" | grep -q 'aodb_cluster_silos_up 1' \
  || { echo "obs smoke: /cluster/prom missing silo gauge"; exit 1; }
history=$(curl -sf "http://$OBS/cluster/history")
echo "$history" | grep -q '"quantiles"' \
  || { echo "obs smoke: /cluster/history empty"; exit 1; }

echo "obs smoke: OK"
