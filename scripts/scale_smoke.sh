#!/usr/bin/env bash
# scale_smoke.sh — end-to-end elastic scale-out smoke test.
#
# Boots a 2-silo shmserver cluster with SWIM gossip membership, live
# rebalancing, and 3-way replicated actor state, puts it under shmload
# (which follows the gossip as an observer), then starts a THIRD silo
# that appears in nobody's -silos list — it joins purely by probing a
# seed. The cluster must: converge every member's view on 3 silos,
# live-migrate activations onto the joiner (drain with state flush,
# redirect markers, version fences), finish the load run with zero
# errors, and report the membership through /cluster/prom and shmtop's
# MEMBERSHIP panel. The in-process twin of this demo — with a strict
# acked-write audit — is `shmbench -ablation elastic` (Ablation H).
set -euo pipefail
cd "$(dirname "$0")/.."

L1=${L1:-127.0.0.1:7501}
L2=${L2:-127.0.0.1:7502}
L3=${L3:-127.0.0.1:7503}
O1=${O1:-127.0.0.1:9501}
O2=${O2:-127.0.0.1:9502}
O3=${O3:-127.0.0.1:9503}

bin=$(mktemp -d)
data=$(mktemp -d)
pid1= pid2= pid3= loadpid=
cleanup() {
  for p in "$loadpid" "$pid1" "$pid2" "$pid3"; do
    [ -n "$p" ] && kill "$p" 2>/dev/null || true
  done
  for p in "$loadpid" "$pid1" "$pid2" "$pid3"; do
    [ -n "$p" ] && wait "$p" 2>/dev/null || true
  done
  rm -rf "$bin" "$data"
}
trap cleanup EXIT

go build -o "$bin" ./cmd/shmserver ./cmd/shmload ./cmd/shmtop

start_silo() { # name listen obs silos seeds extra...
  local name=$1 listen=$2 obs=$3 silos=$4 seeds=$5; shift 5
  "$bin/shmserver" -name "$name" -listen "$listen" -silos "$silos" \
    -gossip -seeds "$seeds" -rebalance -rebalance-every 1s \
    -store "$data/$name" -replicas 3 -sweep-every 500ms \
    -introspect "$obs" "$@" &
}

wait_obs() { # url
  for _ in $(seq 50); do
    curl -sf "http://$1/obs" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  echo "scale smoke: $1 never came up"; return 1
}

wait_metric() { # regex what
  for _ in $(seq 100); do
    curl -sf "http://$O1/cluster/prom" 2>/dev/null | grep -Eq "$1" && return 0
    sleep 0.2
  done
  echo "scale smoke: timed out waiting for $2"; return 1
}

# The initial pair: each lists both in -silos, seeded off each other.
# silo-1 also aggregates cluster observability — silo-3's endpoint is
# pre-listed and simply reads as down until it exists.
start_silo silo-1 "$L1" "$O1" silo-1,silo-2 "silo-2=$L2" \
  -history -history-every 500ms -obs-peers "silo-2=$O2,silo-3=$O3"
pid1=$!
start_silo silo-2 "$L2" "$O2" silo-1,silo-2 "silo-1=$L1"
pid2=$!
wait_obs "$O1"; wait_obs "$O2"

# Sustained load through a gossip-following observer client: placement
# tracks the live view, so the joiner takes traffic the moment it is in.
# Entity-family hashing moves whole org groups (100 sensors each), so the
# population needs enough orgs — 2000 sensors = 20 groups — for the
# joiner's hash-diff slice to be non-empty with near certainty.
"$bin/shmload" -name loadclient -silos silo-1,silo-2 -peers "silo-1=$L1,silo-2=$L2" \
  -gossip -seeds "silo-1=$L1" \
  -sensors 2000 -duration 12s -warmup 1s -queries=true >"$data/load.out" 2>&1 &
loadpid=$!

sleep 2

# Elastic join: silo-3 is in NOBODY's -silos list. One seed is all it
# gets; gossip does the rest, and the rebalancers move actors onto it.
start_silo silo-3 "$L3" "$O3" silo-3 "silo-1=$L1"
pid3=$!
wait_obs "$O3"

# Every member's view gauge reads 3 alive; the cluster page sums them.
wait_metric '^aodb_cluster_gossip_members_alive 9' "view convergence on 3 silos"
# Live rebalancing actually moved activations onto the joiner.
wait_metric '^aodb_cluster_core_migrations_in [1-9]' "live migrations onto silo-3"

wait "$loadpid"; loadrc=$?; loadpid=
cat "$data/load.out"
[ "$loadrc" -eq 0 ] || { echo "scale smoke: load client failed"; exit 1; }
grep -q "errors:" "$data/load.out" && { echo "scale smoke: load saw errors during the join"; exit 1; }
grep -q "following gossip membership" "$data/load.out" \
  || { echo "scale smoke: load client was not following gossip"; exit 1; }

frame=$("$bin/shmtop" -cluster "http://$O1" -once -k 5)
echo "$frame" | grep -q "MEMBERSHIP" || { echo "scale smoke: shmtop missing MEMBERSHIP panel"; exit 1; }
echo "$frame" | grep -q "3/3 silos up" || { echo "scale smoke: not all silos up"; exit 1; }

echo "scale smoke: OK"
