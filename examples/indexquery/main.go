// AODB data-management features: secondary indexes, multi-actor queries,
// streams, and reminders — the features that turn an actor runtime into
// an actor-oriented database.
//
// The example indexes cow actors by pasture zone, answers "mean weight of
// the cows in zone-b" with an index-driven fan-out query, rebalances a
// cow with an indexed update, and shows a sensor stream fanning out to
// subscriber actors.
//
//	go run ./examples/indexquery
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"aodb/internal/core"
	"aodb/internal/index"
	"aodb/internal/query"
	"aodb/internal/streams"
)

// weighCow is a minimal actor with a weight and zone.
type weighCow struct {
	weight float64
	events int
}

type setWeight struct{ Kg float64 }
type getWeight struct{}
type countEvents struct{}

func (c *weighCow) Receive(_ *core.Context, msg any) (any, error) {
	switch m := msg.(type) {
	case setWeight:
		c.weight = m.Kg
		return nil, nil
	case getWeight:
		return c.weight, nil
	case streams.Event:
		c.events++
		return nil, nil
	case countEvents:
		return c.events, nil
	}
	return nil, fmt.Errorf("unknown message %T", msg)
}

func main() {
	ctx := context.Background()
	rt, err := core.New(core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		shCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		rt.Shutdown(shCtx)
	}()
	if err := rt.RegisterKind("Cow", func() core.Actor { return &weighCow{} }); err != nil {
		log.Fatal(err)
	}
	if err := index.RegisterKind(rt); err != nil {
		log.Fatal(err)
	}
	if err := streams.RegisterKind(rt); err != nil {
		log.Fatal(err)
	}
	for _, s := range []string{"silo-1", "silo-2"} {
		if _, err := rt.AddSilo(s, nil); err != nil {
			log.Fatal(err)
		}
	}

	// Populate cows with weights, indexed by pasture zone.
	byZone := index.New(rt, "cows-by-zone", 4)
	zones := []string{"zone-a", "zone-b", "zone-c"}
	fmt.Println("populating 30 cows across 3 zones...")
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("cow-%02d", i)
		if _, err := rt.Call(ctx, core.ID{Kind: "Cow", Key: key}, setWeight{Kg: 400 + float64(i)*5}); err != nil {
			log.Fatal(err)
		}
		if err := byZone.Add(ctx, zones[i%3], key); err != nil {
			log.Fatal(err)
		}
	}

	// Index-driven multi-actor query: mean weight in zone-b.
	eng := query.NewEngine(rt)
	results, err := eng.ByIndex(ctx, byZone, "Cow", "zone-b", getWeight{})
	if err != nil {
		log.Fatal(err)
	}
	sum, n, err := query.Reduce(results, 0.0, func(acc float64, r query.Result) float64 {
		return acc + r.Value.(float64)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("zone-b: %d cows, mean weight %.1f kg\n", n, sum/float64(n))

	// An indexed attribute changes: cow-01 moves from zone-b to zone-a.
	if err := byZone.Update(ctx, "zone-b", "zone-a", "cow-01"); err != nil {
		log.Fatal(err)
	}
	inA, err := byZone.Lookup(ctx, "zone-a")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after rebalancing, zone-a holds %d cows\n", len(inA))

	// Streams: a feeding-station sensor publishes; every cow in zone-a
	// subscribes and receives the events through its mailbox.
	feed := streams.New(rt, "feeding-station-3")
	for _, key := range inA {
		if err := feed.Subscribe(ctx, core.ID{Kind: "Cow", Key: key}); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := feed.Publish(ctx, fmt.Sprintf("feed-dispensed-%d", i)); err != nil {
			log.Fatal(err)
		}
	}
	// Event delivery is asynchronous; wait for it to settle.
	deadline := time.Now().Add(3 * time.Second)
	for {
		v, err := rt.Call(ctx, core.ID{Kind: "Cow", Key: inA[0]}, countEvents{})
		if err != nil {
			log.Fatal(err)
		}
		if v.(int) == 5 {
			fmt.Printf("each of %d subscribed cows received 5 stream events\n", len(inA))
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("stream events missing: %v", v)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Full-index statistics.
	size, err := byZone.Size(ctx)
	if err != nil {
		log.Fatal(err)
	}
	values, err := byZone.AllValues(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %d entries across values %v\n", size, values)
}
