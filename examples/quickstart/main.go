// Quickstart: the smallest complete AODB program.
//
// It defines one actor kind with persistent state, starts a runtime with
// a durable store, calls the actor (activating it on demand), lets the
// idle collector deactivate it (persisting its state), and shows the
// state surviving a full runtime restart.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"aodb/internal/core"
	"aodb/internal/kvstore"
)

// visitCounter is a virtual actor: one logical counter per key, always
// addressable, activated in memory only while in use.
type visitCounter struct {
	state counterState
}

type counterState struct {
	Visits int
}

// Messages.
type visit struct{ Who string }
type total struct{}

// State marks the actor as persistent: the runtime loads this struct at
// activation and stores it when the activation is collected.
func (c *visitCounter) State() any { return &c.state }

func (c *visitCounter) Receive(ctx *core.Context, msg any) (any, error) {
	switch m := msg.(type) {
	case visit:
		c.state.Visits++
		fmt.Printf("  [%s on %s] visit #%d from %s\n",
			ctx.Self(), ctx.SiloName(), c.state.Visits, m.Who)
		return c.state.Visits, nil
	case total:
		return c.state.Visits, nil
	default:
		return nil, fmt.Errorf("unknown message %T", msg)
	}
}

func main() {
	dir, err := os.MkdirTemp("", "aodb-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()

	run := func(label string) int {
		// The store is the durability layer (WAL + snapshots, like the
		// paper's DynamoDB grain storage).
		store, err := kvstore.Open(kvstore.Options{Dir: dir})
		if err != nil {
			log.Fatal(err)
		}
		defer store.Close()

		rt, err := core.New(core.Config{Store: store})
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			shCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
			defer cancel()
			rt.Shutdown(shCtx) // persists remaining activations
		}()

		if err := rt.RegisterKind("VisitCounter",
			func() core.Actor { return &visitCounter{} },
			core.WithPersistence(core.PersistOnDeactivate)); err != nil {
			log.Fatal(err)
		}
		if _, err := rt.AddSilo("silo-1", nil); err != nil {
			log.Fatal(err)
		}

		fmt.Println(label)
		// No create step: calling a virtual actor activates it.
		for _, who := range []string{"ada", "grace", "edsger"} {
			if _, err := rt.Call(ctx, core.ID{Kind: "VisitCounter", Key: "front-door"}, visit{Who: who}); err != nil {
				log.Fatal(err)
			}
		}
		v, err := rt.Call(ctx, core.ID{Kind: "VisitCounter", Key: "front-door"}, total{})
		if err != nil {
			log.Fatal(err)
		}
		return v.(int)
	}

	first := run("first runtime: three visits")
	fmt.Printf("total after first runtime: %d\n\n", first)

	second := run("second runtime: state reloaded from the store, three more visits")
	fmt.Printf("total after second runtime: %d\n", second)
	if second != first*2 {
		log.Fatalf("state did not survive the restart: %d", second)
	}
	fmt.Println("state survived the restart — virtual actors are logically perpetual")
}
