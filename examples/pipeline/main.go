// Production pipeline: the full architecture of the paper's Section 5 in
// one program — bursty devices behind a buffering ingest queue, a secured
// multi-tenant platform with per-role tokens, durable actor state in the
// WAL-backed store, and finally a star-schema export of the archived data
// for analytical queries.
//
//	go run ./examples/pipeline
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"aodb/internal/auth"
	"aodb/internal/core"
	"aodb/internal/ingest"
	"aodb/internal/kvstore"
	"aodb/internal/shm"
	"aodb/internal/warehouse"
)

// reading is one buffered device submission.
type reading struct {
	token      string
	sensor     string
	at         time.Time
	perChannel [][]float64
}

func main() {
	dir, err := os.MkdirTemp("", "aodb-pipeline")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()

	// Durable storage (the DynamoDB analog) with provisioned throughput.
	store, err := kvstore.Open(kvstore.Options{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	rt, err := core.New(core.Config{Store: store})
	if err != nil {
		log.Fatal(err)
	}
	rt.AddSilo("silo-1", nil)
	platform, err := shm.NewPlatform(rt, shm.Options{Persist: core.PersistOnDeactivate})
	if err != nil {
		log.Fatal(err)
	}
	authSvc, err := auth.New(rt, core.PersistOnDeactivate)
	if err != nil {
		log.Fatal(err)
	}
	secure := shm.Secure(platform, authSvc)

	// Tenant setup: an engineer provisions, devices ingest, analysts read.
	const org = "org-0"
	if err := platform.CreateOrganization(ctx, org, "Pipeline Org"); err != nil {
		log.Fatal(err)
	}
	engToken, err := authSvc.CreateUser(ctx, org, "engineer", auth.RoleEngineer)
	if err != nil {
		log.Fatal(err)
	}
	devToken, err := authSvc.CreateUser(ctx, org, "gateway-1", auth.RoleDevice)
	if err != nil {
		log.Fatal(err)
	}
	anaToken, err := authSvc.CreateUser(ctx, org, "analyst", auth.RoleAnalyst)
	if err != nil {
		log.Fatal(err)
	}
	sensor := shm.SensorKey(org, 0)
	if err := secure.InstallSensor(ctx, engToken, shm.SensorSpec{
		Org: org, Key: sensor, PhysicalChannels: 2, WithVirtual: true,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("tenant provisioned: 1 sensor, 3 users (engineer/device/analyst)")

	// The ingest queue absorbs a burst 50x above the platform's pace.
	queue, err := ingest.New(func(ctx context.Context, r reading) error {
		return secure.Ingest(ctx, r.token, r.sensor, r.at, r.perChannel)
	}, ingest.Config{Capacity: 512, Workers: 2, Policy: ingest.PolicyBlock})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Date(2026, 7, 5, 8, 0, 0, 0, time.UTC)
	const burst = 300
	for i := 0; i < burst; i++ {
		r := reading{
			token:  devToken,
			sensor: sensor,
			at:     start.Add(time.Duration(i) * time.Second),
			perChannel: [][]float64{
				{float64(i), float64(i) + 0.5},
				{float64(i) * 2, float64(i)*2 + 1},
			},
		}
		if err := queue.Submit(r); err != nil {
			log.Fatal(err)
		}
	}
	queue.Close() // drains the backlog
	m := queue.Metrics()
	fmt.Printf("ingest queue: %d submitted, %d drained, %d handler errors\n",
		m.Counter("ingest.enqueued").Value(), m.Counter("ingest.drained").Value(),
		m.Counter("ingest.handler_errors").Value())

	// An analyst reads live data; a device token cannot.
	if _, err := secure.LiveData(ctx, devToken, org); err == nil {
		log.Fatal("device token read data!")
	} else {
		fmt.Printf("device token correctly rejected for queries: %v\n", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		live, err := secure.LiveData(ctx, anaToken, org)
		if err != nil {
			log.Fatal(err)
		}
		settled := len(live) == 3
		for _, r := range live {
			if r.Point.At.IsZero() {
				settled = false
			}
		}
		if settled {
			fmt.Println("analyst live view:")
			for _, r := range live {
				fmt.Printf("  %-24s %10.1f\n", r.Channel, r.Point.Value)
			}
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("live data never settled")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Shut the runtime down: actor state archives into the store.
	if err := rt.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("runtime shut down; actor state archived to the WAL-backed store")

	// Export the archive into the star schema and run an analytical query.
	w := warehouse.New()
	n, err := warehouse.ExportFromStore(ctx, w, store, "grains")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warehouse: exported %d facts from archived grain state\n", n)
	rows, err := w.RollUp(warehouse.Filter{Org: org}, warehouse.GroupChannel, warehouse.ByHour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hourly roll-up by channel:")
	for _, r := range rows {
		fmt.Printf("  %-24s %s  n=%-5d mean=%9.1f min=%8.1f max=%8.1f\n",
			r.Group, r.Bucket.Format("15:04"), r.Count, r.Mean(), r.Min, r.Max)
	}
}
