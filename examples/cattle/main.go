// Beef cattle tracking and tracing end-to-end (the paper's second case
// study): a cow's life from pasture to a consumer's trace query.
//
// The example registers farms and a herd, streams collar GPS data with a
// geo-fence, sells a cow between farmers with an atomic multi-actor
// transaction, runs the slaughter/distribution/retail chain, and finally
// answers a consumer trace — in both the actor model (Figure 3) and the
// object-version model (Figure 5), printing the messaging cost of each.
//
//	go run ./examples/cattle
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"aodb/internal/cattle"
	"aodb/internal/core"
)

func main() {
	ctx := context.Background()
	rt, err := core.New(core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		shCtx, cancel := context.WithTimeout(ctx, 15*time.Second)
		defer cancel()
		rt.Shutdown(shCtx)
	}()
	for _, silo := range []string{"silo-1", "silo-2"} {
		if _, err := rt.AddSilo(silo, nil); err != nil {
			log.Fatal(err)
		}
	}
	p, err := cattle.NewPlatform(rt, cattle.Options{})
	if err != nil {
		log.Fatal(err)
	}

	must := func(_ any, err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	// Farms and herd.
	must(rt.Call(ctx, core.ID{Kind: cattle.KindFarmer, Key: "farm-jensen"}, cattle.CreateFarmer{Name: "Jensen Cooperative"}))
	must(rt.Call(ctx, core.ID{Kind: cattle.KindFarmer, Key: "farm-moller"}, cattle.CreateFarmer{Name: "Møller Farms"}))
	born := time.Date(2024, 3, 14, 0, 0, 0, 0, time.UTC)
	if err := p.RegisterCow(ctx, "cow-2041", "farm-jensen", "Danish Blue", born); err != nil {
		log.Fatal(err)
	}

	// Pasture tracking with a geo-fence.
	fence := cattle.Fence{MinLat: 55.30, MaxLat: 55.40, MinLon: 10.30, MaxLon: 10.45, Enabled: true}
	must(rt.Call(ctx, core.ID{Kind: cattle.KindCow, Key: "cow-2041"}, cattle.SetFence{Fence: fence}))
	fmt.Println("tracking cow-2041 across the pasture...")
	for i := 0; i < 48; i++ {
		pt := cattle.GeoPoint{
			At:  born.AddDate(0, 6, 0).Add(time.Duration(i) * 30 * time.Minute),
			Lat: 55.34 + 0.001*float64(i%10),
			Lon: 10.36 + 0.002*float64(i%7),
		}
		if i == 30 {
			pt.Lat = 55.48 // broke through the fence
		}
		if err := p.Track(ctx, "cow-2041", pt); err != nil {
			log.Fatal(err)
		}
	}
	time.Sleep(100 * time.Millisecond) // fence alerts are async
	alerts, err := rt.Call(ctx, core.ID{Kind: cattle.KindFarmer, Key: "farm-jensen"}, cattle.GetFenceAlerts{})
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range alerts.([]cattle.FenceAlert) {
		fmt.Printf("  fence alert: %s at (%.3f, %.3f)\n", a.Cow, a.Point.Lat, a.Point.Lon)
	}
	traj, err := p.Trajectory(ctx, "cow-2041", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  last %d positions: %v...\n", len(traj), traj[0].At.Format(time.DateTime))

	// The cow is sold: a multi-actor transaction keeps the ownership
	// relation consistent across the Cow and both Farmer actors (§4.4).
	fmt.Println("\nselling cow-2041 from Jensen to Møller (2PC transaction)...")
	if err := p.Transfer(ctx, cattle.ModeTxn, "cow-2041", "farm-jensen", "farm-moller"); err != nil {
		log.Fatal(err)
	}
	violations, err := p.CheckOwnershipConsistency(ctx, []string{"cow-2041"}, []string{"farm-jensen", "farm-moller"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ownership consistent: %v (violations: %d)\n", len(violations) == 0, len(violations))

	// The supply chain, actor model: slaughter -> distribute -> retail.
	fmt.Println("\nrunning the supply chain (actor model, Figure 3)...")
	sh := core.ID{Kind: cattle.KindSlaughterhouse, Key: "sh-odense"}
	must(rt.Call(ctx, sh, cattle.CreateSlaughterhouse{Name: "Odense Meats"}))
	must(rt.Call(ctx, sh, cattle.Slaughter{Cow: "cow-2041", CutIDs: []string{"cut-r1", "cut-r2"}, CutWeight: 14.5}))
	dist := core.ID{Kind: cattle.KindDistributor, Key: "dist-dk"}
	must(rt.Call(ctx, dist, cattle.CreateDistributor{Name: "DK Logistics"}))
	for i, cut := range []string{"cut-r1", "cut-r2"} {
		must(rt.Call(ctx, dist, cattle.Dispatch{
			Delivery: fmt.Sprintf("del-%d", i), Cut: cut,
			From: "sh-odense", To: "ret-cph", Vehicle: "truck-7",
			Departed: born.AddDate(2, 0, 0), Arrived: born.AddDate(2, 0, 0).Add(5 * time.Hour),
		}))
	}
	ret := core.ID{Kind: cattle.KindRetailer, Key: "ret-cph"}
	must(rt.Call(ctx, ret, cattle.CreateRetailer{Name: "Copenhagen SuperMart"}))
	for _, cut := range []string{"cut-r1", "cut-r2"} {
		must(rt.Call(ctx, ret, cattle.ReceiveCut{Cut: cut}))
	}
	must(rt.Call(ctx, ret, cattle.MakeProduct{
		Product: "prod-ribeye-box", Name: "Ribeye Box 2kg",
		Cuts: []string{"cut-r1", "cut-r2"}, MadeAt: born.AddDate(2, 0, 1),
	}))

	// Consumer trace, actor model: graph navigation across actors.
	trace, err := p.TraceProduct(ctx, "prod-ribeye-box")
	if err != nil {
		log.Fatal(err)
	}
	printTrace("consumer trace (actor model)", trace)

	// The same chain in the object-version model (Figure 5).
	fmt.Println("\nrunning the supply chain (object model, Figure 5)...")
	if err := p.RegisterCow(ctx, "cow-2042", "farm-moller", "Danish Blue", born); err != nil {
		log.Fatal(err)
	}
	osh := core.ID{Kind: cattle.KindObjSlaughterhouse, Key: "osh-odense"}
	must(rt.Call(ctx, osh, cattle.CreateSlaughterhouse{Name: "Odense Meats (obj)"}))
	must(rt.Call(ctx, osh, cattle.ObjSlaughter{Cow: "cow-2042", CutIDs: []string{"ocut-1", "ocut-2"}, CutWeight: 13.1}))
	for _, cut := range []string{"ocut-1", "ocut-2"} {
		must(rt.Call(ctx, osh, cattle.ObjSendCut{Cut: cut, ToKind: cattle.KindObjDistributor, ToKey: "odist-dk"}))
	}
	odist := core.ID{Kind: cattle.KindObjDistributor, Key: "odist-dk"}
	must(rt.Call(ctx, odist, cattle.ObjDeliver{Cut: "ocut-1", Entry: cattle.ItineraryEntry{
		Distributor: "odist-dk", From: "osh-odense", To: "oret-cph", Vehicle: "truck-8",
		Departed: born.AddDate(2, 0, 0), Arrived: born.AddDate(2, 0, 0).Add(4 * time.Hour),
	}}))
	for _, cut := range []string{"ocut-1", "ocut-2"} {
		must(rt.Call(ctx, odist, cattle.ObjSendCut{Cut: cut, ToKind: cattle.KindObjRetailer, ToKey: "oret-cph"}))
	}
	oret := core.ID{Kind: cattle.KindObjRetailer, Key: "oret-cph"}
	must(rt.Call(ctx, oret, cattle.CreateRetailer{Name: "Copenhagen SuperMart (obj)"}))
	must(rt.Call(ctx, oret, cattle.ObjMakeProduct{Product: "oprod-box", Name: "Ribeye Box 2kg", Cuts: []string{"ocut-1", "ocut-2"}}))

	otrace, err := p.TraceProductObjects(ctx, "oret-cph", "oprod-box")
	if err != nil {
		log.Fatal(err)
	}
	printTrace("consumer trace (object model)", otrace)

	fmt.Printf("\nmessaging cost: actor model %d hops vs object model %d hops (§4.3 trade-off)\n",
		trace.Hops, otrace.Hops)
}

func printTrace(title string, t cattle.Trace) {
	fmt.Printf("\n--- %s ---\n", title)
	fmt.Printf("  product %s (%s) made by %s\n", t.Product.ID, t.Product.Name, t.Product.Retailer)
	for _, cut := range t.Cuts {
		fmt.Printf("  cut %s: %.1fkg from %s at %s, %d transport legs\n",
			cut.ID, cut.WeightKg, cut.Cow, cut.Slaughterhouse, len(cut.Itinerary))
	}
	for _, cow := range t.Cows {
		fmt.Printf("  cow %s: %s, born %s, raised by %s, slaughtered at %s\n",
			cow.Key, cow.Breed, cow.Born.Format(time.DateOnly), cow.Owner, cow.Slaughterhouse)
	}
	fmt.Printf("  assembled in %d actor hops\n", t.Hops)
}
