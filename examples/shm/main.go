// Structural health monitoring end-to-end: a small bridge-monitoring
// deployment on the SHM data platform (the paper's first case study).
//
// The example installs an organization with extension and inclination
// sensors on two silos, streams a morning of readings (with a simulated
// structural event), and then exercises every online query the platform
// serves: live data, raw time ranges, accumulated change, statistical
// aggregates, and threshold alerts.
//
//	go run ./examples/shm
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"aodb/internal/core"
	"aodb/internal/shm"
)

func main() {
	ctx := context.Background()
	rt, err := core.New(core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		shCtx, cancel := context.WithTimeout(ctx, 15*time.Second)
		defer cancel()
		rt.Shutdown(shCtx)
	}()
	for _, silo := range []string{"silo-1", "silo-2"} {
		if _, err := rt.AddSilo(silo, nil); err != nil {
			log.Fatal(err)
		}
	}
	platform, err := shm.NewPlatform(rt, shm.Options{PreferLocal: true})
	if err != nil {
		log.Fatal(err)
	}

	// One organization monitoring the Great Belt Bridge, with two sensors:
	// an extension sensor (with alert thresholds and a virtual channel
	// summing its two channels) and an inclination sensor.
	const org = "org-0"
	if err := platform.CreateOrganization(ctx, org, "Bridge Operations A/S"); err != nil {
		log.Fatal(err)
	}
	extension := shm.SensorKey(org, 0)
	if err := platform.InstallSensor(ctx, shm.SensorSpec{
		Org: org, Key: extension, PhysicalChannels: 2, WithVirtual: true,
		Threshold: shm.Threshold{Min: -25, Max: 25, Enabled: true},
	}); err != nil {
		log.Fatal(err)
	}
	inclination := shm.SensorKey(org, 1)
	if err := platform.InstallSensor(ctx, shm.SensorSpec{
		Org: org, Key: inclination, PhysicalChannels: 2,
	}); err != nil {
		log.Fatal(err)
	}

	// Stream 2 hours of 10 Hz readings, one request per simulated second
	// (compressed: we just submit them back-to-back). Midway, a simulated
	// event pushes the extension beyond its alert threshold.
	start := time.Date(2026, 7, 5, 6, 0, 0, 0, time.UTC)
	fmt.Println("ingesting 2 simulated hours of sensor data...")
	for sec := 0; sec < 7200; sec += 60 { // one request per simulated minute to keep the example quick
		at := start.Add(time.Duration(sec) * time.Second)
		phase := float64(sec) / 900
		spike := 0.0
		if sec == 3600 {
			spike = 40 // the event: a gust pushes extension out of band
		}
		ext := packet(10, func(i int) float64 { return 10*math.Sin(phase) + spike + float64(i)*0.01 })
		if err := platform.Ingest(ctx, extension, at, [][]float64{ext, packet(10, func(i int) float64 { return 5 * math.Cos(phase) })}); err != nil {
			log.Fatal(err)
		}
		if err := platform.Ingest(ctx, inclination, at, [][]float64{
			packet(10, func(i int) float64 { return 0.2 * math.Sin(phase/2) }),
			packet(10, func(i int) float64 { return 0.1 * math.Cos(phase/2) }),
		}); err != nil {
			log.Fatal(err)
		}
	}
	// Asynchronous fan-out (channels, virtual channels, aggregators)
	// settles quickly; give it a moment.
	time.Sleep(200 * time.Millisecond)

	fmt.Println("\n--- live data (most recent value per channel) ---")
	live, err := platform.LiveData(ctx, org)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range live {
		fmt.Printf("  %-28s %8.3f at %s\n", r.Channel, r.Point.Value, r.Point.At.Format(time.TimeOnly))
	}

	fmt.Println("\n--- raw time range (extension ch-0, minute around the event) ---")
	pts, err := platform.RawData(ctx, shm.ChannelKey(extension, 0),
		start.Add(59*time.Minute), start.Add(61*time.Minute))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d points; first %.2f, last %.2f\n", len(pts), pts[0].Value, pts[len(pts)-1].Value)

	acc, err := platform.AccumulatedChange(ctx, shm.ChannelKey(extension, 0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n--- accumulated change on extension ch-0: %.2f ---\n", acc)

	fmt.Println("\n--- hourly aggregates (all channels of the org) ---")
	hours, err := platform.Aggregates(ctx, org, shm.LevelHour, "")
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range hours {
		fmt.Printf("  %s  n=%-5d mean=%8.3f min=%8.3f max=%8.3f\n",
			b.Bucket.Format("15:04"), b.Count, b.Mean(), b.Min, b.Max)
	}

	fmt.Println("\n--- threshold alerts ---")
	alerts, err := platform.Alerts(ctx, org, 5)
	if err != nil {
		log.Fatal(err)
	}
	if len(alerts) == 0 {
		log.Fatal("expected alerts from the simulated event")
	}
	for _, a := range alerts {
		fmt.Printf("  %s: %s (value %.2f)\n", a.At.Format(time.TimeOnly), a.Reason, a.Value)
	}
}

// packet builds one 10-reading packet with values from f.
func packet(n int, f func(i int) float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = f(i)
	}
	return out
}
