module aodb

go 1.22
