// Package aodb is an actor-oriented database (AODB) for IoT data
// platforms: a from-scratch Go reproduction of "Modeling and Building IoT
// Data Platforms with Actor-Oriented Databases" (Wang et al., EDBT 2019).
//
// The implementation lives under internal/:
//
//   - internal/core — the virtual-actor runtime (Orleans-style grains:
//     on-demand activation, single-threaded turns, idle collection,
//     persistent state, timers, reminders)
//   - internal/kvstore, internal/wal, internal/systemstore — the durable
//     storage substrate (DynamoDB/RDS analogs)
//   - internal/cluster, internal/directory, internal/placement,
//     internal/transport, internal/netsim — the distribution substrate
//   - internal/txn, internal/index, internal/query, internal/streams —
//     the database features layered on the actor runtime
//   - internal/shm — the structural health monitoring data platform
//     (the paper's implemented case study)
//   - internal/cattle — the beef cattle tracking and tracing platform
//     (both the Figure 3 actor model and the Figure 5 object model)
//   - internal/bench — the harness regenerating the paper's Figures 6-9
//     and the ablation experiments
//
// See README.md for a walkthrough, DESIGN.md for the system inventory,
// and EXPERIMENTS.md for paper-vs-measured results.
package aodb
