// Command shmtrace reconstructs what an SHM cluster did — and in what
// causal order — from the silos' flight-recorder rings. Every journal
// event carries a hybrid logical clock stamp that travels on the wire
// with actor calls, migrations, and replica writes, so merging the
// per-silo rings by HLC yields a single timeline where cause sorts
// before effect even across machines with skewed wall clocks.
//
// Point it at silo introspection endpoints (it scrapes each /events and
// merges locally):
//
//	shmtrace -silos silo-1=127.0.0.1:9101,silo-2=127.0.0.1:9102
//
// or at an aggregating silo (shmserver -history serves the merged
// timeline at /cluster/events):
//
//	shmtrace -cluster http://127.0.0.1:9101
//
// or, with gossip on, at any one seed silo — the rest of the cluster is
// discovered from its /members view, including silos that joined after
// the operator last looked:
//
//	shmtrace -discover 127.0.0.1:9101
//
// After a crash, feed it the capture files the anomaly froze to disk
// (they survive the process that wrote them):
//
//	shmtrace -capture /data/silo-2/flight-*.json
//
// Filters narrow the timeline to one incident: -actor an actor id,
// -corr a correlation id (16 hex digits, printed in every line — one
// migration or quorum write shares one id across every silo it
// touched), -kind a wire kind name like migrate-drain or
// quorum-write-fail, -n the newest N events. -json emits the merged
// WireEvent array instead of the human-readable table.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"aodb/internal/journal"
	"aodb/internal/siloboot"
	"aodb/internal/telemetry"
)

func main() {
	cluster := flag.String("cluster", "", "URL of an aggregating silo (shmserver -history); reads its merged /cluster/events")
	silos := flag.String("silos", "", "comma-separated name=url silo introspection endpoints to scrape directly")
	discover := flag.String("discover", "", "URL of any one gossiping silo; the rest are discovered from its /members view")
	capture := flag.String("capture", "", "comma-separated capture file paths or globs (flight-*.json) to merge instead of scraping")
	actor := flag.String("actor", "", "only events for this actor id")
	corr := flag.String("corr", "", "only events with this correlation id (16 hex digits)")
	kind := flag.String("kind", "", "only events of this kind (e.g. migrate-drain, quorum-write-fail)")
	n := flag.Int("n", 0, "newest N events after filtering (0 = all)")
	asJSON := flag.Bool("json", false, "emit the merged timeline as JSON instead of a table")
	timeout := flag.Duration("timeout", 3*time.Second, "per-scrape timeout")
	flag.Parse()

	sources := 0
	for _, s := range []string{*cluster, *silos, *discover, *capture} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		fmt.Fprintln(os.Stderr, "shmtrace: need exactly one of -cluster URL, -silos name=url,..., -discover URL, or -capture files")
		os.Exit(2)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	client := &http.Client{Timeout: *timeout}

	var events []journal.WireEvent
	var err error
	switch {
	case *capture != "":
		events, err = mergeCaptures(*capture)
	case *cluster != "":
		// The aggregator already merged; one GET is the whole timeline.
		events, err = fetchEvents(ctx, client, normalizeURL(*cluster)+"/cluster/events")
	case *discover != "":
		var targets map[string]string
		targets, err = discoverTargets(ctx, client, normalizeURL(*discover))
		if err == nil {
			events = scrapeAndMerge(ctx, client, targets)
		}
	default:
		targets := map[string]string{}
		for _, p := range siloboot.SplitPairs(*silos) {
			targets[p[0]] = normalizeURL(p[1])
		}
		events = scrapeAndMerge(ctx, client, targets)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "shmtrace: %v\n", err)
		os.Exit(1)
	}

	events = telemetry.FilterEvents(events, *actor, *corr, *kind)
	if *n > 0 && *n < len(events) {
		events = events[len(events)-*n:]
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		_ = enc.Encode(events)
		return
	}
	printTimeline(os.Stdout, events)
}

// normalizeURL accepts bare host:port or full URLs.
func normalizeURL(u string) string {
	u = strings.TrimSuffix(u, "/")
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return u
}

// fetchEvents GETs one endpoint that serves a []WireEvent.
func fetchEvents(ctx context.Context, client *http.Client, url string) ([]journal.WireEvent, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s returned %s", url, resp.Status)
	}
	var events []journal.WireEvent
	err = json.NewDecoder(resp.Body).Decode(&events)
	return events, err
}

// discoverTargets reads a seed silo's /members view and returns the
// scrape URL for every member that advertises one. Dead members are
// kept: their endpoint is gone but the seed may still be holding events
// about them, and scrape failures are non-fatal below.
func discoverTargets(ctx context.Context, client *http.Client, seed string) (map[string]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, seed+"/members", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s/members returned %s", seed, resp.Status)
	}
	var members []telemetry.MemberInfo
	if err := json.NewDecoder(resp.Body).Decode(&members); err != nil {
		return nil, err
	}
	targets := map[string]string{}
	for _, m := range members {
		if m.ObsAddr != "" {
			targets[m.Name] = normalizeURL(m.ObsAddr)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("%s/members advertises no observability endpoints (silos need -introspect, and gossip on)", seed)
	}
	return targets, nil
}

// scrapeAndMerge pulls each silo's /events ring and HLC-merges them.
// Unreachable silos are reported and skipped — after a crash, the
// survivors' rings are exactly the point.
func scrapeAndMerge(ctx context.Context, client *http.Client, targets map[string]string) []journal.WireEvent {
	var sets [][]journal.WireEvent
	for name, url := range targets {
		events, err := fetchEvents(ctx, client, url+"/events")
		if err != nil {
			fmt.Fprintf(os.Stderr, "shmtrace: %s unreachable (%v), merging without it\n", name, err)
			continue
		}
		sets = append(sets, events)
	}
	return journal.Merge(sets...)
}

// mergeCaptures reads flight-recorder capture files (comma-separated
// paths or globs) and merges their rings.
func mergeCaptures(spec string) ([]journal.WireEvent, error) {
	var paths []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		matches, err := filepath.Glob(part)
		if err != nil {
			return nil, fmt.Errorf("bad glob %q: %w", part, err)
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("no capture files match %q", part)
		}
		paths = append(paths, matches...)
	}
	var sets [][]journal.WireEvent
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		// Capture files wrap the ring in metadata; raw /events dumps are
		// bare arrays. Accept both.
		var cf struct {
			Silo   string              `json:"silo"`
			Reason string              `json:"reason"`
			Events []journal.WireEvent `json:"events"`
		}
		if err := json.Unmarshal(data, &cf); err != nil {
			var bare []journal.WireEvent
			if jerr := json.Unmarshal(data, &bare); jerr != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			sets = append(sets, bare)
			continue
		}
		fmt.Fprintf(os.Stderr, "shmtrace: %s: %d events from %s (captured: %s)\n", filepath.Base(path), len(cf.Events), cf.Silo, cf.Reason)
		sets = append(sets, cf.Events)
	}
	return journal.Merge(sets...), nil
}

// printTimeline renders the merged timeline, one event per line, in
// causal order. The correlation id column is what ties one logical
// operation's lines together across silos.
func printTimeline(w io.Writer, events []journal.WireEvent) {
	if len(events) == 0 {
		fmt.Fprintln(w, "shmtrace: no events (journals empty, disabled, or filtered out)")
		return
	}
	for _, e := range events {
		ts := e.Time
		if t, err := time.Parse(time.RFC3339Nano, e.Time); err == nil {
			ts = t.Format("15:04:05.000")
		}
		corr := e.Corr
		if corr == "" {
			corr = "-"
		}
		actor := e.Actor
		if actor == "" {
			actor = "-"
		}
		fmt.Fprintf(w, "%s  hlc=%016x  %-10s %-18s corr=%s  actor=%s", ts, e.HLC, e.Silo, e.Kind, corr, actor)
		if e.Detail != "" {
			fmt.Fprintf(w, "  %s", e.Detail)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "— %d events, causally ordered (HLC, ties by silo/seq) —\n", len(events))
}
