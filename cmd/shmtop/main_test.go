package main

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"aodb/internal/metrics"
	"aodb/internal/obs"
	"aodb/internal/telemetry"
)

// TestRenderAgainstLiveSilo drives the full shmtop pipeline: a real
// introspection endpoint, the embedded aggregator, and the frame
// renderer — the same path `shmtop -silos ... -once` takes.
func TestRenderAgainstLiveSilo(t *testing.T) {
	reg := metrics.NewRegistry()
	h := reg.Histogram("shm.call_latency")
	for i := 1; i <= 100; i++ {
		h.Record(int64(i) * int64(time.Millisecond))
	}
	prof := telemetry.NewProfiler(telemetry.ProfilerConfig{K: 8})
	prof.ObserveTurn("Sensor/hot", "Sensor", "silo-1", 40*time.Millisecond, 7)
	prof.ObserveTurn("Sensor/warm", "Sensor", "silo-1", 10*time.Millisecond, 2)
	in := &telemetry.Introspection{Registry: reg, Profiler: prof, Name: "silo-1"}
	srv := httptest.NewServer(in.Handler())
	defer srv.Close()

	fetch, events := newFetcher("", "silo-1="+srv.URL, "", time.Second)
	snap, err := fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	frame := render(snap, 10, events(context.Background(), 5))
	for _, want := range []string{
		"1/1 silos up",
		"shm.call_latency",
		"HOT ACTORS",
		"Sensor/hot",
		"silo-1",
	} {
		if !strings.Contains(frame, want) {
			t.Fatalf("frame missing %q:\n%s", want, frame)
		}
	}
	// The hottest actor renders above the cooler one.
	if strings.Index(frame, "Sensor/hot") > strings.Index(frame, "Sensor/warm") {
		t.Fatalf("hot actor not ranked first:\n%s", frame)
	}
}

func TestRenderMarksDownSilo(t *testing.T) {
	agg := obs.New(obs.Config{
		Targets: []obs.Target{{Name: "ghost", URL: "http://127.0.0.1:1"}},
		Timeout: 200 * time.Millisecond,
	})
	snap := agg.PollOnce(context.Background())
	frame := render(snap, 5, nil)
	if !strings.Contains(frame, "PARTIAL") || !strings.Contains(frame, "DOWN") {
		t.Fatalf("down silo not surfaced:\n%s", frame)
	}
}

func TestDurAndBytesFormat(t *testing.T) {
	if got := dur(500); got != "500ns" {
		t.Fatalf("dur = %q", got)
	}
	if got := dur(int64(3 * time.Millisecond)); got != "3.0ms" {
		t.Fatalf("dur = %q", got)
	}
	if got := dur(int64(2500 * time.Nanosecond)); got != "2.5µs" {
		t.Fatalf("dur = %q", got)
	}
	if got := bytesStr(2048); got != "2.0KiB" {
		t.Fatalf("bytesStr = %q", got)
	}
}
