// Command shmtop is a live terminal view of an SHM cluster — top(1) for
// virtual actors. Each frame shows per-silo load (activations, mailbox
// backlog, capacity utilization, scrape health), cluster-wide tail
// latency percentiles from the merged HDR histograms, and the K hottest
// actors with CPU-share, turn, and queue attribution from the merged
// heavy-hitter sketches.
//
// Point it at silo introspection endpoints directly (it embeds the
// cluster aggregator):
//
//	shmtop -silos silo-1=127.0.0.1:9101,silo-2=127.0.0.1:9102
//
// or at a silo already aggregating with `shmserver -history`:
//
//	shmtop -cluster http://127.0.0.1:9101
//
// -once renders a single frame and exits (scriptable; the CI smoke test
// uses it), -interval sets the refresh period, -k the hot-actor rows.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"aodb/internal/obs"
	"aodb/internal/siloboot"
)

func main() {
	cluster := flag.String("cluster", "", "URL of an aggregating silo (shmserver -history); reads its /cluster")
	silos := flag.String("silos", "", "comma-separated name=url silo introspection endpoints to scrape directly")
	interval := flag.Duration("interval", 2*time.Second, "refresh period")
	k := flag.Int("k", 10, "hot-actor rows to show")
	once := flag.Bool("once", false, "render one frame and exit")
	timeout := flag.Duration("timeout", 2*time.Second, "per-scrape timeout")
	flag.Parse()

	if (*cluster == "") == (*silos == "") {
		fmt.Fprintln(os.Stderr, "shmtop: need exactly one of -cluster URL or -silos name=url,...")
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	fetch := newFetcher(*cluster, *silos, *timeout)
	for {
		snap, err := fetch(ctx)
		if err != nil {
			if *once {
				fmt.Fprintf(os.Stderr, "shmtop: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("shmtop: %v (retrying)\n", err)
		} else {
			frame := render(snap, *k)
			if *once {
				fmt.Print(frame)
				return
			}
			// Clear screen + home, like top(1).
			fmt.Print("\x1b[2J\x1b[H" + frame)
		}
		select {
		case <-ctx.Done():
			fmt.Println()
			return
		case <-time.After(*interval):
		}
	}
}

// newFetcher returns the snapshot source: either a remote aggregator's
// /cluster endpoint or an embedded aggregator over the given silos.
func newFetcher(cluster, silos string, timeout time.Duration) func(context.Context) (obs.ClusterSnapshot, error) {
	if cluster != "" {
		client := &http.Client{Timeout: timeout}
		url := strings.TrimSuffix(cluster, "/")
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		url += "/cluster"
		return func(ctx context.Context) (obs.ClusterSnapshot, error) {
			var snap obs.ClusterSnapshot
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
			if err != nil {
				return snap, err
			}
			resp, err := client.Do(req)
			if err != nil {
				return snap, err
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return snap, fmt.Errorf("%s returned %s", url, resp.Status)
			}
			err = json.NewDecoder(resp.Body).Decode(&snap)
			return snap, err
		}
	}
	var targets []obs.Target
	for _, p := range siloboot.SplitPairs(silos) {
		url := p[1]
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		targets = append(targets, obs.Target{Name: p[0], URL: url})
	}
	agg := obs.New(obs.Config{Targets: targets, Timeout: timeout})
	return func(ctx context.Context) (obs.ClusterSnapshot, error) {
		return agg.PollOnce(ctx), nil
	}
}

func render(snap obs.ClusterSnapshot, k int) string {
	var b strings.Builder
	up := 0
	for _, s := range snap.Silos {
		if s.Ok {
			up++
		}
	}
	fmt.Fprintf(&b, "shmtop — %s — %d/%d silos up", snap.Now.Format("15:04:05"), up, len(snap.Silos))
	if snap.Partial {
		b.WriteString("  [PARTIAL: stale or missing silos]")
	}
	b.WriteString("\n\n")

	// Per-silo load.
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SILO\tSTATE\tACTORS\tMAILBOX\tMAXBOX\tUTIL\tAGE")
	for _, s := range snap.Silos {
		state := "up"
		switch {
		case s.Stale:
			state = "STALE"
		case !s.Ok:
			state = "DOWN"
		}
		actors, depth, maxbox, util := "-", "-", "-", "-"
		if s.Snapshot != nil && s.Snapshot.Runtime != nil {
			var a, d, m int
			u := -1.0
			for _, ss := range s.Snapshot.Runtime.Silos {
				a += ss.Activations
				d += ss.MailboxDepth
				if ss.MailboxMax > m {
					m = ss.MailboxMax
				}
				if ss.Utilization > u {
					u = ss.Utilization
				}
			}
			actors, depth, maxbox = fmt.Sprint(a), fmt.Sprint(d), fmt.Sprint(m)
			if u >= 0 {
				util = fmt.Sprintf("%.0f%%", u*100)
			}
		}
		age := "-"
		if s.AgeSeconds > 0 {
			age = fmt.Sprintf("%.0fs", s.AgeSeconds)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\n", s.Name, state, actors, depth, maxbox, util, age)
	}
	tw.Flush()

	// Gossip membership: per-silo view of the SWIM state machine plus
	// live-migration counters. Gauges here must come from the per-silo
	// snapshots — the cluster aggregate SUMS gauges, and every member
	// reports the whole view, so the summed alive count is meaningless.
	if gossiping(snap) {
		b.WriteString("\nMEMBERSHIP (SWIM gossip)\n")
		tw = tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "SILO\tALIVE\tSUSPECT\tDEAD\tINCARN\tLASTCHANGE\tMIG OUT/IN\tFORCED\tFENCED")
		for _, s := range snap.Silos {
			if s.Snapshot == nil || s.Snapshot.Gauges == nil {
				continue
			}
			g, c := s.Snapshot.Gauges, s.Snapshot.Counters
			if _, ok := g["gossip.members.alive"]; !ok {
				continue
			}
			lastChange := "-"
			if ts := g["gossip.last_change_unix"]; ts > 0 {
				lastChange = fmt.Sprintf("%.0fs", snap.Now.Sub(time.Unix(ts, 0)).Seconds())
			}
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%s\t%d/%d\t%d\t%d\n",
				s.Name,
				g["gossip.members.alive"], g["gossip.members.suspect"], g["gossip.members.dead"],
				g["gossip.incarnation"], lastChange,
				c["core.migrations.out"], c["core.migrations.in"],
				c["core.migrations.forced"], c["core.stale_writes_fenced"])
		}
		tw.Flush()
	}

	// Replica health: summed replication counters across the cluster
	// (hints pending is a gauge — nonzero means some home is still owed
	// writes; divergent keys count anti-entropy repairs). Shown only when
	// the cluster replicates.
	if replicating(snap) {
		fmt.Fprintf(&b, "\nREPLICATION  hints pending=%d replayed=%d  read-repairs=%d  anti-entropy: divergent=%d sweeps=%d\n",
			snap.Gauges["replication.hints.pending"],
			snap.Counters["replication.hints.replayed"],
			snap.Counters["replication.readrepair.count"],
			snap.Counters["replication.antientropy.divergent_keys"],
			snap.Counters["replication.antientropy.sweeps"])
	}

	// Merged tail percentiles, busiest histograms first.
	names := make([]string, 0, len(snap.Hists))
	for name, h := range snap.Hists {
		if h.Count > 0 {
			names = append(names, name)
		}
	}
	sort.Slice(names, func(i, j int) bool {
		if snap.Hists[names[i]].Count != snap.Hists[names[j]].Count {
			return snap.Hists[names[i]].Count > snap.Hists[names[j]].Count
		}
		return names[i] < names[j]
	})
	if len(names) > 0 {
		b.WriteString("\nTAIL LATENCY (merged HDR histograms)\n")
		tw = tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "METRIC\tCOUNT\tP50\tP90\tP99\tP99.9\tMAX")
		const maxRows = 8
		for i, name := range names {
			if i == maxRows {
				fmt.Fprintf(tw, "… %d more\t\t\t\t\t\t\n", len(names)-maxRows)
				break
			}
			h := snap.Hists[name]
			fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\t%s\n", name, h.Count,
				dur(h.Percentile(50)), dur(h.Percentile(90)), dur(h.Percentile(99)),
				dur(h.Percentile(99.9)), dur(h.Max))
		}
		tw.Flush()
	}

	// Hot actors.
	if len(snap.HotActors) > 0 {
		b.WriteString("\nHOT ACTORS (cluster-wide top-K, space-saving sketch)\n")
		tw = tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "ACTOR\tSILO\tCPU\tSHARE\tTURNS\tMAXBOX\tSTATE")
		rows := snap.HotActors
		if len(rows) > k {
			rows = rows[:k]
		}
		for _, e := range rows {
			share := "-"
			if snap.ProfCPUNanos > 0 {
				share = fmt.Sprintf("%.1f%%", 100*float64(e.Count)/float64(snap.ProfCPUNanos))
			}
			state := "-"
			if e.Bytes > 0 {
				state = bytesStr(e.Bytes)
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d\t%d\t%s\n",
				e.Key, e.Label, dur(e.Count), share, e.Turns, e.HighWater, state)
		}
		tw.Flush()
	}

	// Per-kind aggregates.
	if len(snap.Kinds) > 0 {
		b.WriteString("\nKINDS\n")
		tw = tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "KIND\tTURNS\tCPU\tMAXBOX\tMAXSTATE")
		for _, kp := range snap.Kinds {
			fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%s\n",
				kp.Kind, kp.Turns, dur(kp.CPUNanos), kp.MailboxHWM, bytesStr(kp.MaxStateBytes))
		}
		tw.Flush()
	}
	return b.String()
}

// gossiping reports whether any silo exported gossip membership gauges.
func gossiping(snap obs.ClusterSnapshot) bool {
	for _, s := range snap.Silos {
		if s.Snapshot != nil && s.Snapshot.Gauges != nil {
			if _, ok := s.Snapshot.Gauges["gossip.members.alive"]; ok {
				return true
			}
		}
	}
	return false
}

// replicating reports whether any silo exported replication metrics.
func replicating(snap obs.ClusterSnapshot) bool {
	for name := range snap.Counters {
		if strings.HasPrefix(name, "replication.") {
			return true
		}
	}
	for name := range snap.Gauges {
		if strings.HasPrefix(name, "replication.") {
			return true
		}
	}
	return false
}

// dur renders nanoseconds compactly.
func dur(ns int64) string {
	if ns <= 0 {
		return "0"
	}
	d := time.Duration(ns)
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", ns)
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func bytesStr(n int64) string {
	switch {
	case n <= 0:
		return "-"
	case n < 1<<10:
		return fmt.Sprintf("%dB", n)
	case n < 1<<20:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	}
}
