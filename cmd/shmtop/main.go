// Command shmtop is a live terminal view of an SHM cluster — top(1) for
// virtual actors. Each frame shows per-silo load (activations, mailbox
// backlog, capacity utilization, scrape health), cluster-wide tail
// latency percentiles from the merged HDR histograms, and the K hottest
// actors with CPU-share, turn, and queue attribution from the merged
// heavy-hitter sketches.
//
// Point it at silo introspection endpoints directly (it embeds the
// cluster aggregator):
//
//	shmtop -silos silo-1=127.0.0.1:9101,silo-2=127.0.0.1:9102
//
// or at a silo already aggregating with `shmserver -history`:
//
//	shmtop -cluster http://127.0.0.1:9101
//
// or, when the cluster gossips, at any one seed silo — every other silo
// (including ones that join later) is discovered from the membership
// view it serves at /members, and members the view declares dead are
// shown DEAD with their last-good numbers marked stale:
//
//	shmtop -discover 127.0.0.1:9101
//
// When silos run with -journal, each frame ends with a TIMELINE panel:
// the newest flight-recorder events across the cluster, HLC-merged into
// causal order (see shmtrace for the full-timeline tool). -events sets
// the row count (0 hides the panel).
//
// -once renders a single frame and exits (scriptable; the CI smoke test
// uses it), -interval sets the refresh period, -k the hot-actor rows.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"text/tabwriter"
	"time"

	"aodb/internal/journal"
	"aodb/internal/obs"
	"aodb/internal/siloboot"
	"aodb/internal/telemetry"
)

func main() {
	cluster := flag.String("cluster", "", "URL of an aggregating silo (shmserver -history); reads its /cluster")
	silos := flag.String("silos", "", "comma-separated name=url silo introspection endpoints to scrape directly")
	discover := flag.String("discover", "", "URL of any one gossiping silo; the rest are discovered live from its /members view")
	interval := flag.Duration("interval", 2*time.Second, "refresh period")
	k := flag.Int("k", 10, "hot-actor rows to show")
	events := flag.Int("events", 12, "TIMELINE rows: newest flight-recorder events, HLC-merged (0 = off)")
	once := flag.Bool("once", false, "render one frame and exit")
	timeout := flag.Duration("timeout", 2*time.Second, "per-scrape timeout")
	flag.Parse()

	modes := 0
	for _, m := range []string{*cluster, *silos, *discover} {
		if m != "" {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "shmtop: need exactly one of -cluster URL, -silos name=url,..., or -discover URL")
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	fetch, fetchEvents := newFetcher(*cluster, *silos, *discover, *timeout)
	for {
		snap, err := fetch(ctx)
		if err != nil {
			if *once {
				fmt.Fprintf(os.Stderr, "shmtop: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("shmtop: %v (retrying)\n", err)
		} else {
			var timeline []journal.WireEvent
			if *events > 0 {
				timeline = fetchEvents(ctx, *events)
			}
			frame := render(snap, *k, timeline)
			if *once {
				fmt.Print(frame)
				return
			}
			// Clear screen + home, like top(1).
			fmt.Print("\x1b[2J\x1b[H" + frame)
		}
		select {
		case <-ctx.Done():
			fmt.Println()
			return
		case <-time.After(*interval):
		}
	}
}

// newFetcher returns the snapshot and timeline sources: a remote
// aggregator's /cluster + /cluster/events endpoints, or an embedded
// aggregator over the given silos — listed statically with -silos, or
// discovered live from a gossiping seed's /members view with -discover.
func newFetcher(cluster, silos, discover string, timeout time.Duration) (func(context.Context) (obs.ClusterSnapshot, error), func(context.Context, int) []journal.WireEvent) {
	client := &http.Client{Timeout: timeout}
	if cluster != "" {
		base := normalizeURL(cluster)
		fetch := func(ctx context.Context) (obs.ClusterSnapshot, error) {
			var snap obs.ClusterSnapshot
			err := getJSON(ctx, client, base+"/cluster", &snap)
			return snap, err
		}
		fetchEvents := func(ctx context.Context, n int) []journal.WireEvent {
			var events []journal.WireEvent
			_ = getJSON(ctx, client, fmt.Sprintf("%s/cluster/events?n=%d", base, n), &events)
			return events
		}
		return fetch, fetchEvents
	}

	aggCfg := obs.Config{Timeout: timeout}
	if discover != "" {
		mv := &memberView{client: client, seed: normalizeURL(discover)}
		aggCfg.Discover = mv.targets
		aggCfg.Dead = mv.dead
	} else {
		for _, p := range siloboot.SplitPairs(silos) {
			aggCfg.Targets = append(aggCfg.Targets, obs.Target{Name: p[0], URL: normalizeURL(p[1])})
		}
	}
	agg := obs.New(aggCfg)
	fetch := func(ctx context.Context) (obs.ClusterSnapshot, error) {
		return agg.PollOnce(ctx), nil
	}
	fetchEvents := func(ctx context.Context, n int) []journal.WireEvent {
		events := agg.EventsOnce(ctx)
		if n < len(events) {
			events = events[len(events)-n:]
		}
		return events
	}
	return fetch, fetchEvents
}

// memberView is shmtop's observer-mode window onto the cluster: it
// polls one seed silo's /members (the gossip view, with each member's
// advertised scrape endpoint) and derives the aggregator's target list
// and dead-set from it. The last good view is kept across seed hiccups
// so a frame during a seed restart still shows the known members.
type memberView struct {
	client *http.Client
	seed   string

	mu      sync.Mutex
	last    []telemetry.MemberInfo
	deadSet map[string]bool
}

// targets refreshes the view and lists scrape targets: every member
// advertising an endpoint, dead ones included — the aggregator keeps
// their last-good snapshot and the dead-set marks it stale.
func (mv *memberView) targets() []obs.Target {
	ctx, cancel := context.WithTimeout(context.Background(), mv.client.Timeout)
	defer cancel()
	var members []telemetry.MemberInfo
	if err := getJSON(ctx, mv.client, mv.seed+"/members", &members); err == nil && len(members) > 0 {
		mv.mu.Lock()
		mv.last = members
		mv.deadSet = make(map[string]bool, len(members))
		for _, m := range members {
			if m.State == "dead" || m.State == "left" {
				mv.deadSet[m.Name] = true
			}
		}
		mv.mu.Unlock()
	}
	mv.mu.Lock()
	defer mv.mu.Unlock()
	var out []obs.Target
	for _, m := range mv.last {
		if m.ObsAddr != "" {
			out = append(out, obs.Target{Name: m.Name, URL: normalizeURL(m.ObsAddr)})
		}
	}
	return out
}

func (mv *memberView) dead(name string) bool {
	mv.mu.Lock()
	defer mv.mu.Unlock()
	return mv.deadSet[name]
}

func normalizeURL(u string) string {
	u = strings.TrimSuffix(u, "/")
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return u
}

func getJSON(ctx context.Context, client *http.Client, url string, into any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s returned %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

func render(snap obs.ClusterSnapshot, k int, timeline []journal.WireEvent) string {
	var b strings.Builder
	up := 0
	for _, s := range snap.Silos {
		if s.Ok {
			up++
		}
	}
	fmt.Fprintf(&b, "shmtop — %s — %d/%d silos up", snap.Now.Format("15:04:05"), up, len(snap.Silos))
	if snap.Partial {
		b.WriteString("  [PARTIAL: stale or missing silos]")
	}
	b.WriteString("\n\n")

	// Per-silo load.
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SILO\tSTATE\tACTORS\tMAILBOX\tMAXBOX\tUTIL\tAGE")
	for _, s := range snap.Silos {
		state := "up"
		switch {
		case s.Dead:
			// The membership view declared it dead: numbers below are its
			// last-good snapshot, not live.
			state = "DEAD"
		case s.Stale:
			state = "STALE"
		case !s.Ok:
			state = "DOWN"
		}
		actors, depth, maxbox, util := "-", "-", "-", "-"
		if s.Snapshot != nil && s.Snapshot.Runtime != nil {
			var a, d, m int
			u := -1.0
			for _, ss := range s.Snapshot.Runtime.Silos {
				a += ss.Activations
				d += ss.MailboxDepth
				if ss.MailboxMax > m {
					m = ss.MailboxMax
				}
				if ss.Utilization > u {
					u = ss.Utilization
				}
			}
			actors, depth, maxbox = fmt.Sprint(a), fmt.Sprint(d), fmt.Sprint(m)
			if u >= 0 {
				util = fmt.Sprintf("%.0f%%", u*100)
			}
		}
		age := "-"
		if s.AgeSeconds > 0 {
			age = fmt.Sprintf("%.0fs", s.AgeSeconds)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\n", s.Name, state, actors, depth, maxbox, util, age)
	}
	tw.Flush()

	// Gossip membership: per-silo view of the SWIM state machine plus
	// live-migration counters. Gauges here must come from the per-silo
	// snapshots — the cluster aggregate SUMS gauges, and every member
	// reports the whole view, so the summed alive count is meaningless.
	if gossiping(snap) {
		b.WriteString("\nMEMBERSHIP (SWIM gossip)\n")
		tw = tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "SILO\tALIVE\tSUSPECT\tDEAD\tINCARN\tLASTCHANGE\tMIG OUT/IN\tFORCED\tFENCED")
		for _, s := range snap.Silos {
			if s.Snapshot == nil || s.Snapshot.Gauges == nil {
				continue
			}
			g, c := s.Snapshot.Gauges, s.Snapshot.Counters
			if _, ok := g["gossip.members.alive"]; !ok {
				continue
			}
			lastChange := "-"
			if ts := g["gossip.last_change_unix"]; ts > 0 {
				lastChange = fmt.Sprintf("%.0fs", snap.Now.Sub(time.Unix(ts, 0)).Seconds())
			}
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%s\t%d/%d\t%d\t%d\n",
				s.Name,
				g["gossip.members.alive"], g["gossip.members.suspect"], g["gossip.members.dead"],
				g["gossip.incarnation"], lastChange,
				c["core.migrations.out"], c["core.migrations.in"],
				c["core.migrations.forced"], c["core.stale_writes_fenced"])
		}
		tw.Flush()
	}

	// Replica health: summed replication counters across the cluster
	// (hints pending is a gauge — nonzero means some home is still owed
	// writes; divergent keys count anti-entropy repairs). Shown only when
	// the cluster replicates.
	if replicating(snap) {
		fmt.Fprintf(&b, "\nREPLICATION  hints pending=%d replayed=%d  read-repairs=%d  anti-entropy: divergent=%d sweeps=%d\n",
			snap.Gauges["replication.hints.pending"],
			snap.Counters["replication.hints.replayed"],
			snap.Counters["replication.readrepair.count"],
			snap.Counters["replication.antientropy.divergent_keys"],
			snap.Counters["replication.antientropy.sweeps"])
	}

	// Merged tail percentiles, busiest histograms first.
	names := make([]string, 0, len(snap.Hists))
	for name, h := range snap.Hists {
		if h.Count > 0 {
			names = append(names, name)
		}
	}
	sort.Slice(names, func(i, j int) bool {
		if snap.Hists[names[i]].Count != snap.Hists[names[j]].Count {
			return snap.Hists[names[i]].Count > snap.Hists[names[j]].Count
		}
		return names[i] < names[j]
	})
	if len(names) > 0 {
		b.WriteString("\nTAIL LATENCY (merged HDR histograms)\n")
		tw = tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "METRIC\tCOUNT\tP50\tP90\tP99\tP99.9\tMAX")
		const maxRows = 8
		for i, name := range names {
			if i == maxRows {
				fmt.Fprintf(tw, "… %d more\t\t\t\t\t\t\n", len(names)-maxRows)
				break
			}
			h := snap.Hists[name]
			fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\t%s\n", name, h.Count,
				dur(h.Percentile(50)), dur(h.Percentile(90)), dur(h.Percentile(99)),
				dur(h.Percentile(99.9)), dur(h.Max))
		}
		tw.Flush()
	}

	// Hot actors.
	if len(snap.HotActors) > 0 {
		b.WriteString("\nHOT ACTORS (cluster-wide top-K, space-saving sketch)\n")
		tw = tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "ACTOR\tSILO\tCPU\tSHARE\tTURNS\tMAXBOX\tSTATE")
		rows := snap.HotActors
		if len(rows) > k {
			rows = rows[:k]
		}
		for _, e := range rows {
			share := "-"
			if snap.ProfCPUNanos > 0 {
				share = fmt.Sprintf("%.1f%%", 100*float64(e.Count)/float64(snap.ProfCPUNanos))
			}
			state := "-"
			if e.Bytes > 0 {
				state = bytesStr(e.Bytes)
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%d\t%d\t%s\n",
				e.Key, e.Label, dur(e.Count), share, e.Turns, e.HighWater, state)
		}
		tw.Flush()
	}

	// Per-kind aggregates.
	if len(snap.Kinds) > 0 {
		b.WriteString("\nKINDS\n")
		tw = tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "KIND\tTURNS\tCPU\tMAXBOX\tMAXSTATE")
		for _, kp := range snap.Kinds {
			fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%s\n",
				kp.Kind, kp.Turns, dur(kp.CPUNanos), kp.MailboxHWM, bytesStr(kp.MaxStateBytes))
		}
		tw.Flush()
	}

	// Flight-recorder timeline: the newest cluster events, HLC-merged
	// into causal order. shmtrace is the full-depth version of this view.
	if len(timeline) > 0 {
		b.WriteString("\nTIMELINE (flight recorder, causal order; newest last)\n")
		tw = tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "TIME\tSILO\tKIND\tACTOR\tCORR\tDETAIL")
		for _, e := range timeline {
			ts := e.Time
			if t, err := time.Parse(time.RFC3339Nano, e.Time); err == nil {
				ts = t.Format("15:04:05.000")
			}
			actor, corr := e.Actor, e.Corr
			if actor == "" {
				actor = "-"
			}
			if corr == "" {
				corr = "-"
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n", ts, e.Silo, e.Kind, actor, corr, e.Detail)
		}
		tw.Flush()
	}
	return b.String()
}

// gossiping reports whether any silo exported gossip membership gauges.
func gossiping(snap obs.ClusterSnapshot) bool {
	for _, s := range snap.Silos {
		if s.Snapshot != nil && s.Snapshot.Gauges != nil {
			if _, ok := s.Snapshot.Gauges["gossip.members.alive"]; ok {
				return true
			}
		}
	}
	return false
}

// replicating reports whether any silo exported replication metrics.
func replicating(snap obs.ClusterSnapshot) bool {
	for name := range snap.Counters {
		if strings.HasPrefix(name, "replication.") {
			return true
		}
	}
	for name := range snap.Gauges {
		if strings.HasPrefix(name, "replication.") {
			return true
		}
	}
	return false
}

// dur renders nanoseconds compactly.
func dur(ns int64) string {
	if ns <= 0 {
		return "0"
	}
	d := time.Duration(ns)
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", ns)
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

func bytesStr(n int64) string {
	switch {
	case n <= 0:
		return "-"
	case n < 1<<10:
		return fmt.Sprintf("%dB", n)
	case n < 1<<20:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	}
}
