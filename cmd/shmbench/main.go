// Command shmbench regenerates the paper's evaluation figures for the
// Structural Health Monitoring Data Platform against the simulated EC2
// capacity model, plus the placement and durability ablations.
//
// Usage:
//
//	shmbench -fig 6              # single-server throughput sweep
//	shmbench -fig 7 -scale 10    # scale-out, scaled 10x down for 1-core hosts
//	shmbench -fig 8              # raw-data latency percentiles (also prints fig 9 data)
//	shmbench -fig 9              # live-data latency percentiles
//	shmbench -fig 8 -durable     # same, with durable (fsync-on-ack) grain storage
//	shmbench -fig all            # everything
//	shmbench -ablation placement # random vs prefer-local vs consistent-hash
//	shmbench -ablation durability
//	shmbench -ablation replication  # N/R/W quorum latency vs losses under disk wipes
//	shmbench -ablation elastic   # grow 2->8 silos live, audit zero lost acked writes
//	shmbench -transport          # wire-path microbench: batch vs nobatch x 1/8/64 callers
//
// Each data point runs -duration (default 8s) with the first -warmup
// (default duration/4) discarded, mirroring the paper's dropped first
// minute.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"aodb/internal/bench"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 6, 7, 8, 9, or all")
	ablation := flag.String("ablation", "", "ablation to run: placement, durability, ingest, replication (N/R/W quorum tradeoff), or elastic (live 2->8 scale-out)")
	duration := flag.Duration("duration", 8*time.Second, "measurement duration per data point")
	warmup := flag.Duration("warmup", 0, "warmup to discard (default duration/4)")
	scale := flag.Int("scale", 1, "scale-model factor (population /N, per-turn cost xN)")
	trace := flag.Bool("trace", false, "trace every request and print tail-latency attribution (figs 8/9)")
	durable := flag.Bool("durable", false, "rerun figs 8/9 with persistence on the hot path (durable group-committed store, write-every-batch)")
	transportBench := flag.Bool("transport", false, "run the transport wire-path microbench (batch vs nobatch at 1/8/64 callers)")
	hot := flag.Bool("hot", false, "profile the 98/1/1 skewed workload and print the top-K hot-actor table")
	hotK := flag.Int("hot-k", 10, "hot-actor rows with -hot")
	hotSensors := flag.Int("hot-sensors", 2000, "sensor population with -hot")
	flag.Parse()

	if *fig == "" && *ablation == "" && !*transportBench && !*hot {
		flag.Usage()
		os.Exit(2)
	}
	opts := bench.FigureOptions{Duration: *duration, Warmup: *warmup, Scale: *scale, Trace: *trace, Durable: *durable}
	ctx := context.Background()
	if err := run(ctx, *fig, *ablation, *transportBench, *hot, *hotK, *hotSensors, opts); err != nil {
		fmt.Fprintln(os.Stderr, "shmbench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, fig, ablation string, transportBench, hot bool, hotK, hotSensors int, opts bench.FigureOptions) error {
	out := os.Stdout
	if transportBench {
		results, err := bench.TransportSweep(ctx, opts.Duration)
		if err != nil {
			return err
		}
		bench.PrintTransportBench(out, results)
	}
	if hot {
		res, err := bench.HotActorExperiment(ctx, hotSensors, 4*hotK, opts)
		if err != nil {
			return err
		}
		bench.PrintHotActors(out, res, hotK)
	}
	switch fig {
	case "":
	case "6":
		results, err := bench.Figure6(ctx, opts)
		if err != nil {
			return err
		}
		bench.PrintFigure6(out, results)
	case "7":
		results, err := bench.Figure7(ctx, opts)
		if err != nil {
			return err
		}
		bench.PrintFigure7(out, results)
	case "8", "9":
		results, err := bench.Figures8And9(ctx, opts)
		if err != nil {
			return err
		}
		if fig == "8" {
			bench.PrintFigure8(out, results)
		} else {
			bench.PrintFigure9(out, results)
		}
		if opts.Trace {
			fmt.Fprintln(out)
			bench.PrintAttribution(out, results)
		}
	case "all":
		r6, err := bench.Figure6(ctx, opts)
		if err != nil {
			return err
		}
		bench.PrintFigure6(out, r6)
		fmt.Fprintln(out)
		r7, err := bench.Figure7(ctx, opts)
		if err != nil {
			return err
		}
		bench.PrintFigure7(out, r7)
		fmt.Fprintln(out)
		r89, err := bench.Figures8And9(ctx, opts)
		if err != nil {
			return err
		}
		bench.PrintFigure8(out, r89)
		fmt.Fprintln(out)
		bench.PrintFigure9(out, r89)
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
	switch ablation {
	case "":
	case "placement":
		results, err := bench.AblationPlacement(ctx, opts)
		if err != nil {
			return err
		}
		bench.PrintPlacement(out, results)
	case "durability":
		results, err := bench.AblationDurability(ctx, opts)
		if err != nil {
			return err
		}
		bench.PrintDurability(out, results)
	case "ingest":
		results, err := bench.AblationIngest(ctx, 2000)
		if err != nil {
			return err
		}
		bench.PrintIngest(out, results)
	case "replication":
		dir, err := os.MkdirTemp("", "shmbench-repl-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		rows, err := bench.QuorumAblation(ctx, dir, opts.Duration/2, nil)
		if err != nil {
			return err
		}
		bench.PrintQuorum(out, rows)
	case "elastic":
		// The sf8 demo shape: 2,100 sensors per final silo, scaled like
		// the figures, growing 2 -> 8 under the ledger audit load.
		res, err := bench.RunElastic(ctx, bench.ElasticConfig{
			Sensors:   2100 * 8 / opts.Scale,
			JoinEvery: opts.Duration / 4,
		})
		if err != nil {
			return err
		}
		bench.PrintElastic(out, res)
		if err := res.Failed(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown ablation %q", ablation)
	}
	return nil
}
