// Command shmload is the load client for shmserver clusters — the analog
// of the paper's .NET benchmarking tool that "uses the Orleans framework
// client directly". It populates the SHM actor database over TCP, offers
// per-second sensor requests, optionally mixes in the 1%/1% live/raw user
// queries, and prints throughput and latency percentiles.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"aodb/internal/bench"
	"aodb/internal/shm"
	"aodb/internal/siloboot"
	"aodb/internal/transport"
)

func main() {
	name := flag.String("name", "loadclient", "this client's transport name")
	listen := flag.String("listen", "127.0.0.1:0", "TCP listen address for responses")
	silos := flag.String("silos", "silo-1", "comma-separated names of ALL silos (same order as servers)")
	peers := flag.String("peers", "", "comma-separated name=addr pairs for the silos")
	sensors := flag.Int("sensors", 50, "sensors to simulate")
	duration := flag.Duration("duration", 10*time.Second, "run duration")
	warmup := flag.Duration("warmup", 2*time.Second, "warmup to discard")
	queries := flag.Bool("queries", true, "issue live/raw user queries per org")
	trace := flag.Bool("trace", false, "trace requests end to end and print insert tail attribution")
	traceSample := flag.Int("trace-sample", 1, "sample every Nth request when tracing")
	stripes := flag.Int("stripes", 0, "gob connection stripes per silo (0 = min(4, GOMAXPROCS))")
	noBatching := flag.Bool("no-batching", false, "disable transport write coalescing (measured baseline)")
	gossipOn := flag.Bool("gossip", false, "follow the cluster's gossip membership as an observer: placement tracks silos joining and leaving mid-run")
	seeds := flag.String("seeds", "", "comma-separated name=addr seed silos to probe for the initial view (with -gossip)")
	replicas := flag.Int("replicas", 0, "cluster's -replicas setting (accepted for a shared flag set; state replication happens on the silos)")
	readQuorum := flag.Int("read-quorum", 0, "cluster's -read-quorum setting (accepted for a shared flag set)")
	writeQuorum := flag.Int("write-quorum", 0, "cluster's -write-quorum setting (accepted for a shared flag set)")
	flag.Parse()

	opts := siloboot.Options{
		Name:          *name,
		Listen:        *listen,
		Silos:         *silos,
		Peers:         *peers,
		TCP:           transport.TCPOptions{Stripes: *stripes, NoBatching: *noBatching},
		Gossip:        *gossipOn,
		Seeds:         *seeds,
		Replicas:      *replicas,
		ReadQuorum:    *readQuorum,
		WriteQuorum:   *writeQuorum,
		Trace:         *trace,
		TraceSample:   *traceSample,
		TraceCapacity: 1 << 17,
	}
	if err := run(opts, *sensors, *duration, *warmup, *queries); err != nil {
		log.Fatalf("shmload: %v", err)
	}
}

func run(opts siloboot.Options, sensors int, duration, warmup time.Duration, queries bool) error {
	// The client shares the silo bring-up path (transport, placement,
	// static view, tracing) but never calls AddSilo: placement only
	// selects names in the -silos view, so no actor activates here.
	node, err := siloboot.Start(opts)
	if err != nil {
		return err
	}
	rt := node.Runtime
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		rt.Shutdown(ctx)
		node.Drain(ctx)
	}()
	// The client registers the same kinds so the runtime can route them.
	platform, err := shm.NewPlatform(rt, shm.Options{})
	if err != nil {
		return err
	}
	// With -gossip this starts the observer agent: the client's placement
	// view then follows the live membership, so requests spread onto
	// silos that join mid-run (a no-op otherwise — the client is never a
	// member, so there is nothing to announce).
	if err := node.JoinCluster(); err != nil {
		return err
	}
	if node.Gossip != nil {
		fmt.Printf("shmload: following gossip membership (view: %v)\n", node.Gossip.View())
	}

	ctx := context.Background()
	fmt.Printf("shmload: populating %d sensors across %d orgs...\n",
		sensors, shm.DefaultPopulation(sensors).Orgs())
	pop := shm.DefaultPopulation(sensors)
	keys, err := platform.Populate(ctx, pop)
	if err != nil {
		return err
	}

	fmt.Printf("shmload: driving %d req/s for %v (warmup %v)\n", sensors, duration, warmup)
	rec := bench.NewRecorder()
	err = bench.Drive(ctx, platform, bench.LoadSpec{
		SensorKeys:       keys,
		Orgs:             pop.Orgs(),
		Channels:         pop.ChannelsPerSensor,
		PointsPerChannel: 10,
		RequestEvery:     time.Second,
		UserQueries:      queries,
		Warmup:           warmup,
		Duration:         duration,
	}, rec)
	if err != nil {
		return err
	}

	measured := (duration - warmup).Seconds()
	fmt.Fprintf(os.Stdout, "\nresults over %.0fs:\n", measured)
	fmt.Printf("  insert: %.0f req/s, %s\n",
		float64(rec.Completed(bench.ReqInsert))/measured, rec.Latencies(bench.ReqInsert))
	if queries {
		fmt.Printf("  live:   %.1f req/s, %s\n",
			float64(rec.Completed(bench.ReqLive))/measured, rec.Latencies(bench.ReqLive))
		fmt.Printf("  raw:    %.1f req/s, %s\n",
			float64(rec.Completed(bench.ReqRaw))/measured, rec.Latencies(bench.ReqRaw))
	}
	if rec.Errors() > 0 {
		fmt.Printf("  errors: %d\n", rec.Errors())
	}
	if node.Tracer != nil {
		// The client only holds root spans; per-turn component data lives
		// on each silo's tracer (serve it with `shmserver -trace
		// -introspect` and read /trace). From this vantage the whole
		// request is network+remote time, so the table reports end-to-end
		// totals and what the self-healing call path absorbed.
		spans := node.Tracer.Spans()
		var retries, hops int32
		for _, sp := range spans {
			retries += sp.Retries
			hops += sp.Hops
		}
		tab := bench.TailAttribution(spans, bench.ReqInsert, []float64{50, 99, 99.9})
		fmt.Printf("\ninsert traces: %d sampled (%d retries, %d extra hops absorbed)\n%s",
			tab.Traces, retries, hops, tab.String())
	}
	return nil
}
