// Command cattlebench runs the beef-cattle ablation experiments:
//
//	cattlebench -ablation objects      # §4.3: meat cuts as actors vs object versions
//	cattlebench -ablation constraints  # §4.4: txn vs registry vs workflow transfers
//	cattlebench -ablation all
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"aodb/internal/bench"
)

func main() {
	ablation := flag.String("ablation", "all", "objects, constraints, or all")
	cows := flag.Int("cows", 20, "cows per model in the objects ablation")
	traces := flag.Int("traces", 25, "consumer traces per product")
	transfers := flag.Int("transfers", 30, "ownership transfers per worker")
	workers := flag.Int("workers", 4, "concurrent transfer workers")
	flag.Parse()

	ctx := context.Background()
	if err := run(ctx, *ablation, *cows, *traces, *transfers, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "cattlebench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, ablation string, cows, traces, transfers, workers int) error {
	out := os.Stdout
	runObjects := func() error {
		results, err := bench.AblationCattleModels(ctx, cows, traces)
		if err != nil {
			return err
		}
		bench.PrintCattleModels(out, results)
		return nil
	}
	runConstraints := func() error {
		results, err := bench.AblationConstraints(ctx, transfers, workers)
		if err != nil {
			return err
		}
		bench.PrintConstraints(out, results)
		return nil
	}
	switch ablation {
	case "objects":
		return runObjects()
	case "constraints":
		return runConstraints()
	case "all":
		if err := runObjects(); err != nil {
			return err
		}
		fmt.Fprintln(out)
		return runConstraints()
	default:
		return fmt.Errorf("unknown ablation %q", ablation)
	}
}
