// Command shmserver hosts one SHM silo over real TCP — the production
// deployment shape the paper's Section 5 describes, with one silo process
// per server. All silos (and the load client) share a static cluster view
// and consistent-hash placement, so every process independently agrees on
// where each actor lives without a shared directory service.
//
// A two-silo cluster on one machine:
//
//	shmserver -name silo-1 -listen 127.0.0.1:7001 \
//	    -silos silo-1,silo-2 -peers silo-2=127.0.0.1:7002 &
//	shmserver -name silo-2 -listen 127.0.0.1:7002 \
//	    -silos silo-1,silo-2 -peers silo-1=127.0.0.1:7001 &
//	shmload -silos silo-1,silo-2 \
//	    -peers silo-1=127.0.0.1:7001,silo-2=127.0.0.1:7002 -sensors 50
//
// With -store DIR the silo persists actor state through the WAL-backed
// kvstore and recovers it on restart.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"aodb/internal/cluster"
	"aodb/internal/core"
	"aodb/internal/kvstore"
	"aodb/internal/placement"
	"aodb/internal/shm"
	"aodb/internal/transport"
)

func main() {
	name := flag.String("name", "silo-1", "this silo's cluster-unique name")
	listen := flag.String("listen", "127.0.0.1:7001", "TCP listen address")
	silos := flag.String("silos", "silo-1", "comma-separated names of ALL silos (identical on every node)")
	peers := flag.String("peers", "", "comma-separated name=addr pairs for the other silos")
	storeDir := flag.String("store", "", "durability directory (empty = in-memory)")
	flag.Parse()

	if err := run(*name, *listen, *silos, *peers, *storeDir); err != nil {
		log.Fatalf("shmserver: %v", err)
	}
}

func run(name, listen, silos, peers, storeDir string) error {
	tcp, err := transport.NewTCP(name, listen)
	if err != nil {
		return err
	}
	for _, pair := range splitPairs(peers) {
		tcp.SetPeer(pair[0], pair[1])
	}

	var store *kvstore.Store
	if storeDir != "" {
		store, err = kvstore.Open(kvstore.Options{Dir: storeDir})
		if err != nil {
			return err
		}
		defer store.Close()
	}

	hash := placement.NewConsistentHash()
	hash.PrefixSep = '@'
	rt, err := core.New(core.Config{
		Transport: tcp,
		Placement: hash,
		Store:     store,
		View:      cluster.NewStaticView(strings.Split(silos, ",")...),
	})
	if err != nil {
		return err
	}
	persist := core.PersistNone
	if store != nil {
		persist = core.PersistOnDeactivate
	}
	if _, err := shm.NewPlatform(rt, shm.Options{Persist: persist}); err != nil {
		return err
	}
	if _, err := rt.AddSilo(name, nil); err != nil {
		return err
	}
	fmt.Printf("shmserver: silo %s listening on %s (cluster: %s)\n", name, tcp.Addr(), silos)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shmserver: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return rt.Shutdown(ctx)
}

func splitPairs(s string) [][2]string {
	var out [][2]string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if name, addr, ok := strings.Cut(part, "="); ok {
			out = append(out, [2]string{name, addr})
		}
	}
	return out
}
