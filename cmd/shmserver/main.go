// Command shmserver hosts one SHM silo over real TCP — the production
// deployment shape the paper's Section 5 describes, with one silo process
// per server. All silos (and the load client) share a static cluster view
// and consistent-hash placement, so every process independently agrees on
// where each actor lives without a shared directory service.
//
// A two-silo cluster on one machine:
//
//	shmserver -name silo-1 -listen 127.0.0.1:7001 \
//	    -silos silo-1,silo-2 -peers silo-2=127.0.0.1:7002 &
//	shmserver -name silo-2 -listen 127.0.0.1:7002 \
//	    -silos silo-1,silo-2 -peers silo-1=127.0.0.1:7001 &
//	shmload -silos silo-1,silo-2 \
//	    -peers silo-1=127.0.0.1:7001,silo-2=127.0.0.1:7002 -sensors 50
//
// With -store DIR the silo persists actor state through the WAL-backed
// kvstore and recovers it on restart; adding -durable makes every state
// write block until its WAL record is fsynced, group-committed across
// concurrent writers. With -introspect ADDR the silo
// serves its runtime state over HTTP: /metrics (Prometheus text),
// /trace (recent sampled spans; ?slow=1 for slow turns), and /actors
// (per-silo activation and mailbox gauges). -trace enables distributed
// tracing (-trace-sample N records every Nth request, -slow-turn D
// flags turns slower than D).
//
// The TCP wire path is tunable: -stripes N opens N parallel gob streams
// per peer, -no-batching disables write coalescing (the measured
// baseline), and -net-workers N sizes the inbound dispatch pool. The
// transport's instruments (transport.flush.*, transport.sendq.depth)
// share the silo's /metrics page.
//
// SIGINT/SIGTERM shuts down gracefully: the introspection endpoint
// drains first, then the runtime deactivates (and persists) its actors.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"aodb/internal/cluster"
	"aodb/internal/core"
	"aodb/internal/kvstore"
	"aodb/internal/metrics"
	"aodb/internal/placement"
	"aodb/internal/shm"
	"aodb/internal/telemetry"
	"aodb/internal/transport"
)

func main() {
	cfg := serverConfig{}
	flag.StringVar(&cfg.name, "name", "silo-1", "this silo's cluster-unique name")
	flag.StringVar(&cfg.listen, "listen", "127.0.0.1:7001", "TCP listen address")
	flag.StringVar(&cfg.silos, "silos", "silo-1", "comma-separated names of ALL silos (identical on every node)")
	flag.StringVar(&cfg.peers, "peers", "", "comma-separated name=addr pairs for the other silos")
	flag.StringVar(&cfg.storeDir, "store", "", "durability directory (empty = in-memory)")
	flag.BoolVar(&cfg.durable, "durable", false, "with -store, fsync every actor-state write via WAL group commit (ack => on disk)")
	flag.StringVar(&cfg.introspect, "introspect", "", "HTTP introspection listen address (empty = off)")
	flag.BoolVar(&cfg.trace, "trace", false, "enable distributed tracing")
	flag.IntVar(&cfg.traceSample, "trace-sample", 1, "sample every Nth request when tracing")
	flag.DurationVar(&cfg.slowTurn, "slow-turn", 250*time.Millisecond, "flag actor turns slower than this")
	flag.IntVar(&cfg.stripes, "stripes", 0, "gob connection stripes per peer (0 = min(4, GOMAXPROCS))")
	flag.BoolVar(&cfg.noBatching, "no-batching", false, "disable transport write coalescing (measured baseline)")
	flag.IntVar(&cfg.netWorkers, "net-workers", 0, "inbound dispatch pool size (0 = default)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg); err != nil {
		log.Fatalf("shmserver: %v", err)
	}
}

type serverConfig struct {
	name, listen, silos, peers, storeDir string
	introspect                           string
	durable                              bool
	trace                                bool
	traceSample                          int
	slowTurn                             time.Duration
	stripes                              int
	noBatching                           bool
	netWorkers                           int
}

func run(ctx context.Context, cfg serverConfig) error {
	// One registry for the runtime and the transport, so the wire-path
	// instruments (transport.flush.*, transport.sendq.depth, ...) land on
	// the same /metrics page as the actor gauges.
	reg := metrics.NewRegistry()
	tcp, err := transport.NewTCPWithOptions(cfg.name, cfg.listen, transport.TCPOptions{
		Stripes:         cfg.stripes,
		NoBatching:      cfg.noBatching,
		DispatchWorkers: cfg.netWorkers,
		Metrics:         reg,
	})
	if err != nil {
		return err
	}
	for _, pair := range splitPairs(cfg.peers) {
		tcp.SetPeer(pair[0], pair[1])
	}
	// Circuit breakers between silos: a dead peer fails fast instead of
	// stalling every call during its dial timeout.
	breaker := transport.NewBreaker(tcp, transport.BreakerOptions{})

	var store *kvstore.Store
	if cfg.storeDir != "" {
		store, err = kvstore.Open(kvstore.Options{Dir: cfg.storeDir, Durable: cfg.durable})
		if err != nil {
			return err
		}
		defer store.Close()
	} else if cfg.durable {
		return fmt.Errorf("-durable needs -store DIR")
	}

	var tracer *telemetry.Tracer
	if cfg.trace {
		tracer = telemetry.New(telemetry.Config{
			SampleEvery: uint64(cfg.traceSample),
			SlowTurn:    cfg.slowTurn,
		})
	}

	hash := placement.NewConsistentHash()
	hash.PrefixSep = '@'
	rt, err := core.New(core.Config{
		Transport: breaker,
		Placement: hash,
		Store:     store,
		View:      cluster.NewStaticView(strings.Split(cfg.silos, ",")...),
		Tracer:    tracer,
		Metrics:   reg,
	})
	if err != nil {
		return err
	}
	persist := core.PersistNone
	if store != nil {
		persist = core.PersistOnDeactivate
	}
	if _, err := shm.NewPlatform(rt, shm.Options{Persist: persist}); err != nil {
		return err
	}
	if _, err := rt.AddSilo(cfg.name, nil); err != nil {
		return err
	}
	fmt.Printf("shmserver: silo %s listening on %s (cluster: %s)\n", cfg.name, tcp.Addr(), cfg.silos)

	// The introspection endpoint shares the signal context: on SIGINT it
	// drains in-flight scrapes before the runtime goes away underneath it.
	httpDone := make(chan error, 1)
	if cfg.introspect != "" {
		in := &telemetry.Introspection{
			Registry: rt.Metrics(),
			Tracer:   tracer,
			Runtime:  rt,
			Breakers: breaker.States,
		}
		ready := make(chan string, 1)
		go func() { httpDone <- in.Serve(ctx, cfg.introspect, ready) }()
		select {
		case addr := <-ready:
			fmt.Printf("shmserver: introspection on http://%s\n", addr)
		case err := <-httpDone:
			return fmt.Errorf("introspection endpoint: %w", err)
		}
	} else {
		httpDone <- nil
	}

	<-ctx.Done()
	fmt.Println("shmserver: shutting down")
	if err := <-httpDone; err != nil {
		log.Printf("shmserver: introspection shutdown: %v", err)
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return rt.Shutdown(shCtx)
}

func splitPairs(s string) [][2]string {
	var out [][2]string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if name, addr, ok := strings.Cut(part, "="); ok {
			out = append(out, [2]string{name, addr})
		}
	}
	return out
}
