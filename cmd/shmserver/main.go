// Command shmserver hosts one SHM silo over real TCP — the production
// deployment shape the paper's Section 5 describes, with one silo process
// per server. All silos (and the load client) share a static cluster view
// and consistent-hash placement, so every process independently agrees on
// where each actor lives without a shared directory service.
//
// With -gossip the static view becomes a live one: silos run a SWIM
// membership agent over the same TCP transport (probe, indirect
// ping-req, suspect→dead with incarnation refutation), so a new silo
// can join a running cluster with -seeds and a dead one is detected and
// evicted without any restart. Placement, the replication ring, and the
// directory all track the gossiped view; adding -rebalance makes each
// silo live-migrate its activations whose consistent-hash home moved —
// drain with a state flush, redirect markers, version fences — so the
// cluster spreads load onto a joiner within seconds (see
// scripts/scale_smoke.sh for the elastic-growth demo).
//
// A two-silo cluster on one machine:
//
//	shmserver -name silo-1 -listen 127.0.0.1:7001 \
//	    -silos silo-1,silo-2 -peers silo-2=127.0.0.1:7002 &
//	shmserver -name silo-2 -listen 127.0.0.1:7002 \
//	    -silos silo-1,silo-2 -peers silo-1=127.0.0.1:7001 &
//	shmload -silos silo-1,silo-2 \
//	    -peers silo-1=127.0.0.1:7001,silo-2=127.0.0.1:7002 -sensors 50
//
// With -store DIR the silo persists actor state through the WAL-backed
// kvstore and recovers it on restart; adding -durable makes every state
// write block until its WAL record is fsynced, group-committed across
// concurrent writers. Adding -replicas N (identical on every silo)
// replicates actor state N ways across the cluster's stores: state
// writes must reach a -write-quorum of replicas before they ack, reads
// assemble a -read-quorum with read-repair, failed replicas get hinted
// handoff, and a background anti-entropy sweep (-sweep-every)
// reconciles divergence — so wiping one silo's -store directory loses
// nothing that was acknowledged (see scripts/repl_smoke.sh). On
// shutdown the silo drains its hint queue and puts a final WAL sync
// barrier on the store. With -introspect ADDR the silo
// serves its runtime state over HTTP: /metrics (Prometheus text),
// /trace (recent sampled spans; ?slow=1 for slow turns), /actors
// (per-silo activation and mailbox gauges), and /obs (the mergeable
// observability snapshot the cluster aggregator and shmtop consume).
// -trace enables distributed tracing (-trace-sample N records every Nth
// request, -slow-turn D flags turns slower than D).
//
// Observability is opt-in, preserving the one-atomic-check disabled
// contract on the hot path:
//
//   - -profile accounts per-actor CPU, turns, mailbox high-water marks,
//     and state sizes in a bounded K-slot heavy-hitter sketch
//     (-profile-k sizes it), surfaced on /obs, /metrics, and shmtop.
//   - -pprof mounts net/http/pprof under /debug/pprof/ on the
//     introspection port for on-demand CPU/heap profiles.
//   - -history runs the cluster aggregator in-process: the silo scrapes
//     itself (and any -obs-peers name=url endpoints), keeps a ring of
//     recent merged percentiles, and serves /cluster, /cluster/history,
//     and /cluster/prom from its introspection port. With -gossip the
//     aggregator also discovers scrape targets from the membership view
//     (peers gossip their introspection addresses), and members the view
//     declares dead have their last-good snapshots marked stale.
//   - -journal runs the causal flight recorder: a bounded per-silo ring
//     of HLC-stamped cluster events (membership transitions, migration
//     phases, quorum outcomes, hinted handoff, breaker trips, slow
//     turns, WAL flush stalls, panics), served at /events and merged
//     across silos by /cluster/events and shmtrace. Anomalies — lost
//     quorums, panics, members declared dead, SLO-breaching turns —
//     freeze the ring to a capture file under -journal-capture-dir, so
//     the window around a crash survives the crash.
//
// The TCP wire path is tunable: -stripes N opens N parallel gob streams
// per peer, -no-batching disables write coalescing (the measured
// baseline), and -net-workers N sizes the inbound dispatch pool. The
// transport's instruments (transport.flush.*, transport.sendq.depth)
// share the silo's /metrics page.
//
// SIGINT/SIGTERM shuts down gracefully: the introspection endpoint
// drains first, then the runtime deactivates (and persists) its actors.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"aodb/internal/core"
	"aodb/internal/gossip"
	"aodb/internal/journal"
	"aodb/internal/kvstore"
	"aodb/internal/obs"
	"aodb/internal/shm"
	"aodb/internal/siloboot"
	"aodb/internal/transport"
)

func main() {
	cfg := serverConfig{}
	flag.StringVar(&cfg.name, "name", "silo-1", "this silo's cluster-unique name")
	flag.StringVar(&cfg.listen, "listen", "127.0.0.1:7001", "TCP listen address")
	flag.StringVar(&cfg.silos, "silos", "silo-1", "comma-separated names of ALL silos (identical on every node)")
	flag.StringVar(&cfg.peers, "peers", "", "comma-separated name=addr pairs for the other silos")
	flag.BoolVar(&cfg.gossip, "gossip", false, "SWIM gossip membership: the live view replaces the static -silos list, so silos can join and leave at runtime")
	flag.StringVar(&cfg.seeds, "seeds", "", "comma-separated name=addr seed silos probed at startup to join a running cluster (with -gossip)")
	flag.BoolVar(&cfg.rebalance, "rebalance", false, "live-migrate actors whose placement moved after a membership change (and shed hot actors with -profile)")
	flag.DurationVar(&cfg.rebalanceEvery, "rebalance-every", 10*time.Second, "background rebalance planning period with -rebalance")
	flag.StringVar(&cfg.storeDir, "store", "", "durability directory (empty = in-memory)")
	flag.BoolVar(&cfg.durable, "durable", false, "with -store, fsync every actor-state write via WAL group commit (ack => on disk)")
	flag.IntVar(&cfg.replicas, "replicas", 0, "replicate actor state across N silos with quorum reads/writes (0/1 = off; needs -store)")
	flag.IntVar(&cfg.readQuorum, "read-quorum", 0, "replicas that must answer a state read (0 = majority of -replicas)")
	flag.IntVar(&cfg.writeQuorum, "write-quorum", 0, "replicas that must ack a state write (0 = majority of -replicas)")
	flag.DurationVar(&cfg.sweepEvery, "sweep-every", 30*time.Second, "anti-entropy sweep period with -replicas")
	flag.StringVar(&cfg.introspect, "introspect", "", "HTTP introspection listen address (empty = off)")
	flag.BoolVar(&cfg.trace, "trace", false, "enable distributed tracing")
	flag.IntVar(&cfg.traceSample, "trace-sample", 1, "sample every Nth request when tracing")
	flag.DurationVar(&cfg.slowTurn, "slow-turn", 250*time.Millisecond, "flag actor turns slower than this")
	flag.BoolVar(&cfg.profile, "profile", false, "account per-actor hot spots (CPU, turns, mailbox high-water) in a bounded sketch")
	flag.IntVar(&cfg.profileK, "profile-k", 64, "hot-actor sketch slots (memory is O(K) regardless of actor count)")
	flag.BoolVar(&cfg.journal, "journal", false, "record HLC-stamped cluster events in the flight-recorder ring (served at /events)")
	flag.IntVar(&cfg.journalSize, "journal-size", 0, "flight-recorder ring capacity in events (0 = 4096)")
	flag.StringVar(&cfg.journalCaptureDir, "journal-capture-dir", "", "freeze the ring to JSON files here when an anomaly fires (empty = captures off)")
	flag.DurationVar(&cfg.journalSLO, "journal-slo", 0, "turn duration treated as an SLO breach, triggering a capture (0 = 10x -slow-turn)")
	flag.DurationVar(&cfg.walStall, "wal-stall", time.Second, "with -journal and -store, journal WAL group flushes slower than this")
	flag.BoolVar(&cfg.pprofOn, "pprof", false, "mount /debug/pprof on the introspection port")
	flag.BoolVar(&cfg.history, "history", false, "aggregate cluster metrics in-process and serve /cluster with history")
	flag.StringVar(&cfg.obsPeers, "obs-peers", "", "comma-separated name=url introspection endpoints to aggregate with -history")
	flag.DurationVar(&cfg.historyEvery, "history-every", 2*time.Second, "aggregator poll interval with -history")
	flag.IntVar(&cfg.stripes, "stripes", 0, "gob connection stripes per peer (0 = min(4, GOMAXPROCS))")
	flag.BoolVar(&cfg.noBatching, "no-batching", false, "disable transport write coalescing (measured baseline)")
	flag.IntVar(&cfg.netWorkers, "net-workers", 0, "inbound dispatch pool size (0 = default)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg); err != nil {
		log.Fatalf("shmserver: %v", err)
	}
}

type serverConfig struct {
	name, listen, silos, peers, storeDir string
	introspect                           string
	gossip                               bool
	seeds                                string
	rebalance                            bool
	rebalanceEvery                       time.Duration
	durable                              bool
	replicas                             int
	readQuorum, writeQuorum              int
	sweepEvery                           time.Duration
	trace                                bool
	traceSample                          int
	slowTurn                             time.Duration
	profile                              bool
	profileK                             int
	journal                              bool
	journalSize                          int
	journalCaptureDir                    string
	journalSLO                           time.Duration
	walStall                             time.Duration
	pprofOn                              bool
	history                              bool
	obsPeers                             string
	historyEvery                         time.Duration
	stripes                              int
	noBatching                           bool
	netWorkers                           int
}

func run(ctx context.Context, cfg serverConfig) error {
	// The flight recorder is built here, not in siloboot, so it can hook
	// sources the boot layer never sees — like the store's WAL flush
	// stalls below, which need the journal before kvstore.Open runs.
	var jr *journal.Journal
	if cfg.journal {
		jr = journal.New(journal.Config{
			Silo:       cfg.name,
			Size:       cfg.journalSize,
			CaptureDir: cfg.journalCaptureDir,
			SlowTurn:   cfg.slowTurn,
			SLOTurn:    cfg.journalSLO,
			OnCapture: func(path, reason string) {
				log.Printf("shmserver: journal capture %s (%s)", path, reason)
			},
		})
		jr.SetEnabled(true)
	}

	var store *kvstore.Store
	if cfg.storeDir != "" {
		kvOpts := kvstore.Options{Dir: cfg.storeDir, Durable: cfg.durable}
		if jr != nil {
			kvOpts.FlushStallAfter = cfg.walStall
			kvOpts.OnFlushStall = func(d time.Duration, records int) {
				if jr.Enabled() {
					jr.Record(journal.WALStall, "", 0, fmt.Sprintf("flush took %v (%d records)", d, records))
				}
			}
		}
		var err error
		store, err = kvstore.Open(kvOpts)
		if err != nil {
			return err
		}
		defer store.Close()
	} else if cfg.durable {
		return fmt.Errorf("-durable needs -store DIR")
	}
	hintDir := ""
	if cfg.replicas > 1 {
		if cfg.storeDir == "" {
			return fmt.Errorf("-replicas needs -store DIR")
		}
		hintDir = filepath.Join(cfg.storeDir, "hints")
	}

	node, err := siloboot.Start(siloboot.Options{
		Name:   cfg.name,
		Listen: cfg.listen,
		Silos:  cfg.silos,
		Peers:  cfg.peers,
		TCP: transport.TCPOptions{
			Stripes:         cfg.stripes,
			NoBatching:      cfg.noBatching,
			DispatchWorkers: cfg.netWorkers,
		},
		// Circuit breakers between silos: a dead peer fails fast instead
		// of stalling every call during its dial timeout.
		Breaker:        true,
		Gossip:         cfg.gossip,
		Seeds:          cfg.seeds,
		Rebalance:      cfg.rebalance,
		RebalanceEvery: cfg.rebalanceEvery,
		Store:          store,
		Replicas:       cfg.replicas,
		ReadQuorum:     cfg.readQuorum,
		WriteQuorum:    cfg.writeQuorum,
		HintDir:        hintDir,
		SweepEvery:     cfg.sweepEvery,
		Trace:          cfg.trace,
		TraceSample:    cfg.traceSample,
		SlowTurn:       cfg.slowTurn,
		Profile:        cfg.profile,
		ProfileK:       cfg.profileK,
		Journal:        jr,
		ObsAddr:        cfg.introspect,
	})
	if err != nil {
		return err
	}
	rt := node.Runtime
	persist := core.PersistNone
	if store != nil {
		persist = core.PersistOnDeactivate
	}
	if _, err := shm.NewPlatform(rt, shm.Options{Persist: persist}); err != nil {
		return err
	}
	if _, err := rt.AddSilo(cfg.name, nil); err != nil {
		return err
	}
	// Join after the silo can serve: kinds registered, AddSilo done. The
	// gossip announcement is what makes peers start routing actors here.
	if err := node.JoinCluster(); err != nil {
		return err
	}
	fmt.Printf("shmserver: silo %s listening on %s (cluster: %s)\n", cfg.name, node.TCP.Addr(), cfg.silos)
	if node.Gossip != nil {
		fmt.Printf("shmserver: gossip membership on (seeds: %q, rebalance: %v)\n", cfg.seeds, cfg.rebalance)
	}
	if node.Coordinator != nil {
		r, w := node.Coordinator.Quorums()
		fmt.Printf("shmserver: replicating actor state %d-way (R=%d, W=%d, sweep every %v)\n",
			node.Coordinator.N(), r, w, cfg.sweepEvery)
	}

	// The introspection endpoint shares the signal context: on SIGINT it
	// drains in-flight scrapes before the runtime goes away underneath it.
	httpDone := make(chan error, 1)
	if cfg.introspect != "" {
		in := node.Introspection(cfg.pprofOn)
		if cfg.history {
			aggCfg := obs.Config{
				Targets:  obsTargets(cfg.obsPeers),
				Interval: cfg.historyEvery,
			}
			if ag := node.Gossip; ag != nil {
				// Scrape targets come from the live membership view: peers
				// gossip their introspection addresses, so a joiner shows up
				// on /cluster without anyone editing -obs-peers. Members the
				// view declares dead keep their last-good snapshot, marked
				// stale immediately.
				self := cfg.name
				aggCfg.Discover = func() []obs.Target { return gossipTargets(ag, self) }
				aggCfg.Dead = func(name string) bool { return gossipDead(ag, name) }
			}
			agg := obs.New(aggCfg)
			agg.AddLocal(cfg.name, in.Obs)
			if jr != nil {
				agg.AddLocalEvents(cfg.name, jr.WireSnapshot)
			}
			go agg.Run(ctx)
			in.Extra = agg.Register
		}
		ready := make(chan string, 1)
		go func() { httpDone <- in.Serve(ctx, cfg.introspect, ready) }()
		select {
		case addr := <-ready:
			fmt.Printf("shmserver: introspection on http://%s\n", addr)
			if cfg.history {
				fmt.Printf("shmserver: cluster aggregation on http://%s/cluster\n", addr)
			}
		case err := <-httpDone:
			return fmt.Errorf("introspection endpoint: %w", err)
		}
	} else {
		if cfg.history || cfg.pprofOn {
			return fmt.Errorf("-history and -pprof need -introspect ADDR")
		}
		httpDone <- nil
	}

	<-ctx.Done()
	fmt.Println("shmserver: shutting down")
	if err := <-httpDone; err != nil {
		log.Printf("shmserver: introspection shutdown: %v", err)
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := rt.Shutdown(shCtx); err != nil {
		return err
	}
	// Storage drain barrier: with replication on, flush the hint queue
	// toward reachable homes and fsync it, then put a final WAL sync on
	// the store — nothing acknowledged is left in memory.
	return node.Drain(shCtx)
}

func obsTargets(pairs string) []obs.Target {
	var out []obs.Target
	for _, p := range siloboot.SplitPairs(pairs) {
		url := p[1]
		if len(url) > 0 && url[0] != 'h' {
			url = "http://" + url
		}
		out = append(out, obs.Target{Name: p[0], URL: url})
	}
	return out
}

// gossipTargets lists the membership view's advertised introspection
// endpoints as aggregator scrape targets (self excluded — it is wired
// in-process via AddLocal).
func gossipTargets(ag *gossip.Agent, self string) []obs.Target {
	var out []obs.Target
	for _, m := range ag.Members() {
		if m.Name == self || m.ObsAddr == "" {
			continue
		}
		if m.State != gossip.StateAlive && m.State != gossip.StateSuspect {
			continue
		}
		url := m.ObsAddr
		if url[0] != 'h' {
			url = "http://" + url
		}
		out = append(out, obs.Target{Name: m.Name, URL: url})
	}
	return out
}

// gossipDead reports whether the membership view has declared a silo
// dead (or it left); the aggregator marks its last-good snapshot stale.
func gossipDead(ag *gossip.Agent, name string) bool {
	for _, m := range ag.Members() {
		if m.Name == name {
			return m.State == gossip.StateDead || m.State == gossip.StateLeft
		}
	}
	return false
}
