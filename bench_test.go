package aodb

// Top-level benchmarks: one per paper figure plus the ablations, backed
// by the internal/bench harness, and micro-benchmarks for the runtime's
// hot paths. The figure benchmarks run one shortened experiment per
// invocation and report domain metrics (req/s, latency percentiles) via
// b.ReportMetric; `go run ./cmd/shmbench` runs the full-length versions.

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"aodb/internal/bench"
	"aodb/internal/capacity"
	"aodb/internal/core"
	"aodb/internal/journal"
	"aodb/internal/kvstore"
	"aodb/internal/telemetry"
)

// figureOpts keeps figure benchmarks short enough for `go test -bench`.
func figureOpts() bench.FigureOptions {
	return bench.FigureOptions{Duration: 4 * time.Second, Warmup: time.Second, Scale: 4}
}

func reportSHM(b *testing.B, results []bench.SHMResult) {
	b.Helper()
	for _, r := range results {
		scale := float64(r.Config.Scale)
		b.ReportMetric(r.ThroughputRPS*scale, fmt.Sprintf("req/s@%d-sensors", r.Sensors*r.Config.Scale))
	}
}

// BenchmarkFigure6 regenerates the single-server throughput sweep.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := bench.Figure6(context.Background(), figureOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSHM(b, results)
		}
	}
}

// BenchmarkFigure7 regenerates the scale-out sweep.
func BenchmarkFigure7(b *testing.B) {
	opts := figureOpts()
	opts.Scale = 10 // 16,800 paper-sensors at sf=8 scale-modelled down
	for i := 0; i < b.N; i++ {
		results, err := bench.Figure7(context.Background(), opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range results {
				b.ReportMetric(r.ThroughputRPS*float64(r.Config.Scale),
					fmt.Sprintf("req/s@sf%d", r.Config.Silos))
			}
		}
	}
}

// BenchmarkFigure8 regenerates raw-data latency percentiles (and
// BenchmarkFigure9 the live-data ones) from the mixed 98/1/1 workload.
func BenchmarkFigure8(b *testing.B) {
	benchmarkFigure89(b, func(r bench.SHMResult) (float64, float64) {
		s := r.Raw
		return float64(s.PercentileDuration(50)) / 1e6, float64(s.PercentileDuration(99)) / 1e6
	}, "raw")
}

// BenchmarkFigure9 regenerates live-data latency percentiles.
func BenchmarkFigure9(b *testing.B) {
	benchmarkFigure89(b, func(r bench.SHMResult) (float64, float64) {
		s := r.Live
		return float64(s.PercentileDuration(50)) / 1e6, float64(s.PercentileDuration(99)) / 1e6
	}, "live")
}

func benchmarkFigure89(b *testing.B, pick func(bench.SHMResult) (p50, p99 float64), label string) {
	opts := figureOpts()
	opts.Scale = 1 // latency figures must not be scale-modelled
	opts.Duration = 5 * time.Second
	for i := 0; i < b.N; i++ {
		results, err := bench.Figures8And9(context.Background(), opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range results {
				p50, p99 := pick(r)
				b.ReportMetric(p50, fmt.Sprintf("%s-p50-ms@%d", label, r.Sensors))
				b.ReportMetric(p99, fmt.Sprintf("%s-p99-ms@%d", label, r.Sensors))
			}
		}
	}
}

// BenchmarkPlacement runs the §5 placement ablation.
func BenchmarkPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := bench.AblationPlacement(context.Background(), figureOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range results {
				b.ReportMetric(r.RemoteFraction(), r.Strategy+"-remote-frac")
			}
		}
	}
}

// BenchmarkDurability runs the §5 durability-policy ablation.
func BenchmarkDurability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := bench.AblationDurability(context.Background(), figureOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range results {
				b.ReportMetric(r.Throughput, r.Policy+"-req/s")
			}
		}
	}
}

// BenchmarkCattleModels runs the §4.3 actor-vs-object ablation.
func BenchmarkCattleModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := bench.AblationCattleModels(context.Background(), 10, 10)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range results {
				name, _, _ := strings.Cut(r.Model, " ")
				b.ReportMetric(r.HopsPer, name+"-hops")
			}
		}
	}
}

// BenchmarkConstraintModes runs the §4.4 constraint-mode ablation.
func BenchmarkConstraintModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := bench.AblationConstraints(context.Background(), 15, 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range results {
				b.ReportMetric(float64(r.MeanLat)/1e6, r.Mode+"-mean-ms")
			}
		}
	}
}

// --- Runtime micro-benchmarks ---

type echoActor struct{}

func (echoActor) Receive(_ *core.Context, msg any) (any, error) { return msg, nil }

func newBenchRuntime(b *testing.B, silos int) *core.Runtime {
	b.Helper()
	rt, err := core.New(core.Config{IdleAfter: time.Hour, CollectEvery: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		rt.Shutdown(ctx)
	})
	if err := rt.RegisterKind("Echo", func() core.Actor { return echoActor{} }); err != nil {
		b.Fatal(err)
	}
	for i := 1; i <= silos; i++ {
		if _, err := rt.AddSilo(fmt.Sprintf("silo-%d", i), nil); err != nil {
			b.Fatal(err)
		}
	}
	return rt
}

// BenchmarkActorCallHot measures a call to an already-activated actor —
// the runtime's per-message overhead floor.
func BenchmarkActorCallHot(b *testing.B) {
	rt := newBenchRuntime(b, 1)
	ctx := context.Background()
	id := core.ID{Kind: "Echo", Key: "one"}
	if _, err := rt.Call(ctx, id, 1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Call(ctx, id, i); err != nil {
			b.Fatal(err)
		}
	}
}

// benchHotLoop is the shared body of the telemetry-overhead trio below:
// the same hot-actor call loop under three tracer configurations, so
// `go test -bench 'ActorCallHot' -count N` + benchstat quantifies what
// the subsystem costs (the disabled case must stay within 2% of the
// baseline — its hot path is one atomic load).
func benchHotLoop(b *testing.B, tracer *telemetry.Tracer) {
	rt, err := core.New(core.Config{IdleAfter: time.Hour, CollectEvery: time.Hour, Tracer: tracer})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		rt.Shutdown(ctx)
	})
	if err := rt.RegisterKind("Echo", func() core.Actor { return echoActor{} }); err != nil {
		b.Fatal(err)
	}
	if _, err := rt.AddSilo("silo-1", nil); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	id := core.ID{Kind: "Echo", Key: "one"}
	if _, err := rt.Call(ctx, id, 1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Call(ctx, id, i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkActorCallHotTracerDisabled: tracer installed but switched
// off — the configuration production runs idle in.
func BenchmarkActorCallHotTracerDisabled(b *testing.B) {
	tracer := telemetry.New(telemetry.Config{})
	tracer.SetEnabled(false)
	benchHotLoop(b, tracer)
}

// BenchmarkActorCallHotTraced: every request sampled end to end.
func BenchmarkActorCallHotTraced(b *testing.B) {
	benchHotLoop(b, telemetry.New(telemetry.Config{SampleEvery: 1}))
}

// benchHotLoopJournal mirrors benchHotLoop for the flight recorder: the
// same hot-actor call loop with a journal installed, enabled or not.
// The disabled case is the contract under test — one atomic load per
// call site, within noise of the bare baseline.
func benchHotLoopJournal(b *testing.B, enabled bool) {
	jr := journal.New(journal.Config{Silo: "bench"})
	jr.SetEnabled(enabled)
	rt, err := core.New(core.Config{IdleAfter: time.Hour, CollectEvery: time.Hour, Journal: jr})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		rt.Shutdown(ctx)
	})
	if err := rt.RegisterKind("Echo", func() core.Actor { return echoActor{} }); err != nil {
		b.Fatal(err)
	}
	if _, err := rt.AddSilo("silo-1", nil); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	id := core.ID{Kind: "Echo", Key: "one"}
	if _, err := rt.Call(ctx, id, 1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Call(ctx, id, i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkActorCallHotJournalDisabled: flight recorder installed but
// switched off — the configuration production runs idle in.
func BenchmarkActorCallHotJournalDisabled(b *testing.B) {
	benchHotLoopJournal(b, false)
}

// BenchmarkActorCallHotJournaled: flight recorder on; fast calls record
// nothing (no slow turns, no anomalies), so this measures the enabled
// check plus the HLC bookkeeping on the call path.
func BenchmarkActorCallHotJournaled(b *testing.B) {
	benchHotLoopJournal(b, true)
}

// BenchmarkActorCallParallel measures many goroutines calling many actors.
func BenchmarkActorCallParallel(b *testing.B) {
	rt := newBenchRuntime(b, 2)
	ctx := context.Background()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			id := core.ID{Kind: "Echo", Key: fmt.Sprintf("k%d", i%256)}
			if _, err := rt.Call(ctx, id, i); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkActivation measures cold activation cost (new actor per call).
func BenchmarkActivation(b *testing.B) {
	rt := newBenchRuntime(b, 1)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := core.ID{Kind: "Echo", Key: fmt.Sprintf("cold-%d", i)}
		if _, err := rt.Call(ctx, id, i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKVStorePut measures the storage substrate's write path
// (memory-only, no WAL).
func BenchmarkKVStorePut(b *testing.B) {
	s, err := kvstore.Open(kvstore.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	tb, err := s.EnsureTable("bench", kvstore.Throughput{})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	value := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tb.Put(ctx, fmt.Sprintf("k%d", i%4096), value); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKVStoreDurablePut measures the WAL-backed write path.
func BenchmarkKVStoreDurablePut(b *testing.B) {
	s, err := kvstore.Open(kvstore.Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	tb, err := s.EnsureTable("bench", kvstore.Throughput{})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	value := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tb.Put(ctx, fmt.Sprintf("k%d", i%4096), value); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCapacityLimiter measures the simulated-CPU execution path used
// by every benchmark turn.
func BenchmarkCapacityLimiter(b *testing.B) {
	l := capacity.NewLimiter(capacity.Profile{Workers: 2, Speed: 1}, nil)
	ctx := context.Background()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := l.Execute(ctx, 0, func() error { return nil }); err != nil {
				b.Fatal(err)
			}
		}
	})
}
